/**
 * @file
 * art: the Adaptive Resonance Theory image-recognition kernel
 * (SpecFP2000). The hot phase computes the F2-layer activations --
 * one long dot product per output neuron -- finds the winner, and
 * adapts the winner's weight row toward the input.
 */

#include "workloads/workload.hh"

#include <vector>

#include "workloads/kernel_util.hh"

namespace tarantula::workloads
{

using namespace tarantula::program;

namespace
{

constexpr std::size_t Inputs = 8192;    ///< F1 layer size
constexpr std::size_t Neurons = 64;     ///< F2 layer size
constexpr double LearnRate = 0.25;

constexpr Addr WBase = 0x10000000;      ///< weights[neuron][input]
constexpr Addr XBase = 0x14000000;      ///< input vector
constexpr Addr YBase = 0x14800000;      ///< activations
constexpr std::int64_t RowBytes = Inputs * 8;

std::vector<double> weights() {
    return randomT(Neurons * Inputs, 0x81, 0.0, 1.0);
}
std::vector<double> inputVec() {
    return randomT(Inputs, 0x82, 0.0, 1.0);
}

struct RefResult
{
    std::vector<double> y;
    std::vector<double> w;
    std::size_t winner;
};

RefResult
refArt()
{
    RefResult r;
    r.w = weights();
    const auto x = inputVec();
    r.y.assign(Neurons, 0.0);
    for (std::size_t j = 0; j < Neurons; ++j) {
        // Tree-order partial sums: 128 lanes accumulate over chunks,
        // then a log reduction -- matching the vector kernel exactly
        // is unnecessary; tolerances absorb the difference.
        double acc = 0.0;
        for (std::size_t i = 0; i < Inputs; ++i)
            acc += r.w[j * Inputs + i] * x[i];
        r.y[j] = acc;
    }
    r.winner = 0;
    for (std::size_t j = 1; j < Neurons; ++j) {
        if (r.y[j] > r.y[r.winner])
            r.winner = j;
    }
    for (std::size_t i = 0; i < Inputs; ++i) {
        double &wji = r.w[r.winner * Inputs + i];
        wji += LearnRate * (x[i] - wji);
    }
    return r;
}

} // anonymous namespace

Workload
art()
{
    Workload w;
    w.name = "art";
    w.description = "Neural-network F2 activations + winner adaptation";
    w.usesPrefetch = true;

    Assembler v;
    {
        // Activations: per neuron, a vector dot product.
        Label jloop = v.newLabel();
        Label kloop = v.newLabel();
        v.movi(R(1), static_cast<std::int64_t>(WBase));
        v.movi(R(2), static_cast<std::int64_t>(XBase));
        v.movi(R(3), static_cast<std::int64_t>(YBase));
        v.movi(R(5), static_cast<std::int64_t>(Neurons));
        v.setvl(128);
        v.setvs(8);
        v.mov(R(10), R(1));                 // &w[j][0]
        v.bind(jloop);
        v.vxorq(V(0), V(0), V(0));          // acc = 0
        v.mov(R(7), R(10));
        v.mov(R(8), R(2));
        v.movi(R(6), static_cast<std::int64_t>(Inputs));
        v.bind(kloop);
        v.vprefetch(R(7), 8192);
        v.vldt(V(1), R(7));
        v.vldt(V(2), R(8));
        v.vmult(V(3), V(1), V(2));
        v.vaddt(V(0), V(0), V(3));
        v.addq(R(7), R(7), 1024);
        v.addq(R(8), R(8), 1024);
        v.subq(R(6), R(6), 128);
        v.bgt(R(6), kloop);
        emitVecSumT(v, V(0), V(4));
        v.vextractt(F(0), V(0), 0);
        v.stt(F(0), 0, R(3));
        v.addq(R(3), R(3), 8);
        v.addq(R(10), R(10), RowBytes);
        v.subq(R(5), R(5), 1);
        v.bgt(R(5), jloop);

        // Winner search (scalar; 64 elements).
        Label wloop = v.newLabel();
        Label noswap = v.newLabel();
        v.movi(R(3), static_cast<std::int64_t>(YBase));
        v.ldt(F(1), 0, R(3));               // best value
        v.movi(R(11), 0);                   // best index
        v.movi(R(6), 1);                    // j
        v.bind(wloop);
        v.sll(R(7), R(6), 3);
        v.addq(R(7), R(7), R(3));
        v.ldt(F(2), 0, R(7));
        v.cmptlt(F(3), F(1), F(2));
        v.fbeq(F(3), noswap);
        v.fmov(F(1), F(2));
        v.mov(R(11), R(6));
        v.bind(noswap);
        v.addq(R(6), R(6), 1);
        v.movi(R(7), static_cast<std::int64_t>(Neurons));
        v.cmplt(R(7), R(6), R(7));
        v.bne(R(7), wloop);

        // Adapt winner row: w += lr * (x - w).
        Label aloop = v.newLabel();
        v.fconst(F(4), LearnRate, R(9));
        v.mulq(R(10), R(11), RowBytes);
        v.addq(R(10), R(10), R(1));
        v.mov(R(8), R(2));
        v.movi(R(6), static_cast<std::int64_t>(Inputs));
        v.bind(aloop);
        v.vldt(V(1), R(10));
        v.vldt(V(2), R(8));
        v.vsubt(V(3), V(2), V(1));
        v.vmult(V(3), V(3), F(4));
        v.vaddt(V(1), V(1), V(3));
        v.vstt(V(1), R(10));
        v.addq(R(10), R(10), 1024);
        v.addq(R(8), R(8), 1024);
        v.subq(R(6), R(6), 128);
        v.bgt(R(6), aloop);
        v.halt();
    }
    w.vectorProg = v.finalize();

    Assembler s;
    {
        Label jloop = s.newLabel();
        Label kloop = s.newLabel();
        s.movi(R(1), static_cast<std::int64_t>(WBase));
        s.movi(R(2), static_cast<std::int64_t>(XBase));
        s.movi(R(3), static_cast<std::int64_t>(YBase));
        s.movi(R(5), static_cast<std::int64_t>(Neurons));
        s.mov(R(10), R(1));
        s.bind(jloop);
        // Four partial sums break the accumulate dependency chain
        // (Inputs is a multiple of four).
        s.fconst(F(0), 0.0, R(9));
        s.fmov(F(10), F(0));
        s.fmov(F(11), F(0));
        s.fmov(F(12), F(0));
        s.mov(R(7), R(10));
        s.mov(R(8), R(2));
        s.movi(R(6), static_cast<std::int64_t>(Inputs));
        s.bind(kloop);
        s.ldt(F(1), 0, R(7));
        s.ldt(F(2), 0, R(8));
        s.mult(F(1), F(1), F(2));
        s.addt(F(0), F(0), F(1));
        s.ldt(F(3), 8, R(7));
        s.ldt(F(4), 8, R(8));
        s.mult(F(3), F(3), F(4));
        s.addt(F(10), F(10), F(3));
        s.ldt(F(5), 16, R(7));
        s.ldt(F(6), 16, R(8));
        s.mult(F(5), F(5), F(6));
        s.addt(F(11), F(11), F(5));
        s.ldt(F(7), 24, R(7));
        s.ldt(F(8), 24, R(8));
        s.mult(F(7), F(7), F(8));
        s.addt(F(12), F(12), F(7));
        s.addq(R(7), R(7), 32);
        s.addq(R(8), R(8), 32);
        s.subq(R(6), R(6), 4);
        s.bgt(R(6), kloop);
        s.addt(F(0), F(0), F(10));
        s.addt(F(11), F(11), F(12));
        s.addt(F(0), F(0), F(11));
        s.stt(F(0), 0, R(3));
        s.addq(R(3), R(3), 8);
        s.addq(R(10), R(10), RowBytes);
        s.subq(R(5), R(5), 1);
        s.bgt(R(5), jloop);

        Label wloop = s.newLabel();
        Label noswap = s.newLabel();
        s.movi(R(3), static_cast<std::int64_t>(YBase));
        s.ldt(F(1), 0, R(3));
        s.movi(R(11), 0);
        s.movi(R(6), 1);
        s.bind(wloop);
        s.sll(R(7), R(6), 3);
        s.addq(R(7), R(7), R(3));
        s.ldt(F(2), 0, R(7));
        s.cmptlt(F(3), F(1), F(2));
        s.fbeq(F(3), noswap);
        s.fmov(F(1), F(2));
        s.mov(R(11), R(6));
        s.bind(noswap);
        s.addq(R(6), R(6), 1);
        s.movi(R(7), static_cast<std::int64_t>(Neurons));
        s.cmplt(R(7), R(6), R(7));
        s.bne(R(7), wloop);

        Label aloop = s.newLabel();
        s.fconst(F(4), LearnRate, R(9));
        s.mulq(R(10), R(11), RowBytes);
        s.addq(R(10), R(10), R(1));
        s.mov(R(8), R(2));
        s.movi(R(6), static_cast<std::int64_t>(Inputs));
        s.bind(aloop);
        s.ldt(F(1), 0, R(10));
        s.ldt(F(2), 0, R(8));
        s.subt(F(3), F(2), F(1));
        s.mult(F(3), F(3), F(4));
        s.addt(F(1), F(1), F(3));
        s.stt(F(1), 0, R(10));
        s.addq(R(10), R(10), 8);
        s.addq(R(8), R(8), 8);
        s.subq(R(6), R(6), 1);
        s.bgt(R(6), aloop);
        s.halt();
    }
    w.scalarProg = s.finalize();

    w.init = [](exec::FunctionalMemory &mem) {
        putT(mem, WBase, weights());
        putT(mem, XBase, inputVec());
    };
    w.check = [](exec::FunctionalMemory &mem) {
        RefResult r = refArt();
        // The dot products differ in summation order; use a loose
        // relative tolerance, then check the adapted weights.
        std::string err = checkArrayT(mem, YBase, r.y, "y", 1e-6);
        if (!err.empty())
            return err;
        return checkArrayT(mem, WBase, r.w, "w", 1e-6);
    };
    return w;
}

} // namespace tarantula::workloads
