/**
 * @file
 * The static instruction representation.
 *
 * Operand conventions (Alpha-flavored):
 *  - operate:        rd = ra OP rb   (or OP imm when immValid)
 *  - load:           rd = MEM[rb + imm]
 *  - store:          MEM[rb + imm] = ra
 *  - branch:         test ra, branch to `target` (an instruction index)
 *  - vector operate: vd = va OP vb          (VV mode)
 *                    vd = va OP scalar(rb)  (VS mode; int or fp per dt)
 *  - vld/vst:        base rb, stride from the vs control register
 *  - vgath:          vd[i] = MEM[rb + va[i]]
 *  - vscat:          MEM[rb + vb[i]] = va[i]
 *
 * Branch targets are resolved instruction indices within a Program (the
 * Assembler patches labels), so the simulator needs no decode stage.
 */

#ifndef TARANTULA_ISA_INSTRUCTION_HH
#define TARANTULA_ISA_INSTRUCTION_HH

#include <cstdint>
#include <string>

#include "isa/opcodes.hh"
#include "isa/registers.hh"

namespace tarantula::isa
{

/** A static (decoded) instruction. */
struct Inst
{
    Opcode op = Opcode::Nop;
    VecMode mode = VecMode::None;       ///< VV / VS for vector operates
    DataType dt = DataType::Q;          ///< element type
    bool underMask = false;             ///< masked-execution modifier

    RegIndex rd = ZeroReg;              ///< destination register
    RegIndex ra = ZeroReg;              ///< first source
    RegIndex rb = ZeroReg;              ///< second source / base

    bool immValid = false;              ///< rb replaced by a literal
    std::int64_t imm = 0;               ///< integer literal/displacement
    double fimm = 0.0;                  ///< FP literal for VS/T forms

    std::int32_t target = -1;           ///< branch target (inst index)

    /** @name Classification helpers */
    /// @{
    InstClass cls() const { return instClass(op); }
    VecGroup group() const { return vecGroup(op, mode); }
    bool isVec() const { return isVector(op); }
    bool
    isBranch() const
    {
        return cls() == InstClass::Branch;
    }
    bool
    isCondBranch() const
    {
        return isBranch() && op != Opcode::Br;
    }
    bool
    isMem() const
    {
        auto c = cls();
        return c == InstClass::Load || c == InstClass::Store ||
               c == InstClass::VecLoad || c == InstClass::VecStore;
    }
    /// @}

    /**
     * Collect the architectural source registers this instruction
     * reads, including implicit control-register reads (vl, vs, vm).
     * Zero registers are skipped.
     *
     * @param out   Array of at least 6 RegIds.
     * @return Number of entries written.
     */
    unsigned srcRegs(RegId out[6]) const;

    /**
     * Collect the architectural destination registers, including
     * implicit control-register writes.
     *
     * @param out   Array of at least 2 RegIds.
     * @return Number of entries written.
     */
    unsigned dstRegs(RegId out[2]) const;

    /** Human-readable disassembly. */
    std::string disasm() const;
};

} // namespace tarantula::isa

#endif // TARANTULA_ISA_INSTRUCTION_HH
