#include "isa/instruction.hh"

#include <sstream>

#include "base/logging.hh"

namespace tarantula::isa
{

namespace
{

/** Append a register to the list unless it reads as zero. */
void
push(RegId out[], unsigned &n, RegId id)
{
    if (!id.isZero())
        out[n++] = id;
}

/** The scalar register class a VS-form operand uses for a data type. */
RegId
scalarSrc(DataType dt, RegIndex idx)
{
    return dt == DataType::T ? fpReg(idx) : intReg(idx);
}

} // anonymous namespace

unsigned
Inst::srcRegs(RegId out[6]) const
{
    unsigned n = 0;
    switch (cls()) {
      case InstClass::IntAlu:
        if (op == Opcode::Ftoit) {
            push(out, n, fpReg(ra));
            break;
        }
        push(out, n, intReg(ra));
        if (!immValid && op != Opcode::Lda)
            push(out, n, intReg(rb));
        break;

      case InstClass::FpAlu:
        if (op == Opcode::Itoft) {
            push(out, n, intReg(ra));
            break;
        }
        if (op != Opcode::Sqrtt && op != Opcode::Fmov &&
            op != Opcode::Cvtqt && op != Opcode::Cvttq) {
            push(out, n, fpReg(ra));
        }
        push(out, n, fpReg(rb));
        break;

      case InstClass::Load:
        push(out, n, intReg(rb));
        break;

      case InstClass::Store:
        push(out, n, op == Opcode::Stt ? fpReg(ra) : intReg(ra));
        push(out, n, intReg(rb));
        break;

      case InstClass::Branch:
        if (op == Opcode::Fbeq || op == Opcode::Fbne)
            push(out, n, fpReg(ra));
        else if (op != Opcode::Br)
            push(out, n, intReg(ra));
        break;

      case InstClass::Misc:
        if (op == Opcode::Prefetch || op == Opcode::Wh64)
            push(out, n, intReg(rb));
        break;

      case InstClass::VecOperate:
        push(out, n, ctrlReg(CtrlVl));
        if (underMask || op == Opcode::Vmerge)
            push(out, n, ctrlReg(CtrlVm));
        push(out, n, vecReg(ra));
        if (op == Opcode::Vfmac)
            push(out, n, vecReg(rd));
        if (op != Opcode::Vsqrt) {
            if (mode == VecMode::VS) {
                if (!immValid)
                    push(out, n, scalarSrc(dt, rb));
            } else {
                push(out, n, vecReg(rb));
            }
        }
        break;

      case InstClass::VecLoad:
        push(out, n, ctrlReg(CtrlVl));
        if (underMask)
            push(out, n, ctrlReg(CtrlVm));
        push(out, n, intReg(rb));
        if (op == Opcode::Vld)
            push(out, n, ctrlReg(CtrlVs));
        else
            push(out, n, vecReg(ra));   // gather index vector
        break;

      case InstClass::VecStore:
        push(out, n, ctrlReg(CtrlVl));
        if (underMask)
            push(out, n, ctrlReg(CtrlVm));
        push(out, n, intReg(rb));
        push(out, n, vecReg(ra));       // store data
        if (op == Opcode::Vst)
            push(out, n, ctrlReg(CtrlVs));
        else
            push(out, n, vecReg(rd));   // scatter index vector (vd slot)
        break;

      case InstClass::VecControl:
        switch (op) {
          case Opcode::Setvl:
          case Opcode::Setvs:
            if (!immValid)
                push(out, n, intReg(ra));
            break;
          case Opcode::Setvm:
            push(out, n, vecReg(ra));
            push(out, n, ctrlReg(CtrlVl));
            break;
          case Opcode::Viota:
            push(out, n, ctrlReg(CtrlVl));
            break;
          case Opcode::Vslidedown:
            push(out, n, vecReg(ra));
            push(out, n, ctrlReg(CtrlVl));
            break;
          case Opcode::Vextract:
            push(out, n, vecReg(ra));
            if (!immValid)
                push(out, n, intReg(rb));
            break;
          case Opcode::Vinsert:
            push(out, n, vecReg(rd));   // read-modify-write
            push(out, n, scalarSrc(dt, ra));
            if (!immValid)
                push(out, n, intReg(rb));
            break;
          default:
            panic("isa: srcRegs: unhandled VC opcode");
        }
        break;
    }
    return n;
}

unsigned
Inst::dstRegs(RegId out[2]) const
{
    unsigned n = 0;
    switch (cls()) {
      case InstClass::IntAlu:
        push(out, n, intReg(rd));
        break;
      case InstClass::FpAlu:
        push(out, n, fpReg(rd));
        break;
      case InstClass::Load:
        push(out, n, op == Opcode::Ldt ? fpReg(rd) : intReg(rd));
        break;
      case InstClass::Store:
      case InstClass::Branch:
      case InstClass::Misc:
        break;
      case InstClass::VecOperate:
      case InstClass::VecLoad:
        push(out, n, vecReg(rd));
        break;
      case InstClass::VecStore:
        break;
      case InstClass::VecControl:
        switch (op) {
          case Opcode::Setvl:
            out[n++] = ctrlReg(CtrlVl);
            break;
          case Opcode::Setvs:
            out[n++] = ctrlReg(CtrlVs);
            break;
          case Opcode::Setvm:
            out[n++] = ctrlReg(CtrlVm);
            break;
          case Opcode::Viota:
          case Opcode::Vslidedown:
          case Opcode::Vinsert:
            push(out, n, vecReg(rd));
            break;
          case Opcode::Vextract:
            push(out, n, dt == DataType::T ? fpReg(rd) : intReg(rd));
            break;
          default:
            panic("isa: dstRegs: unhandled VC opcode");
        }
        break;
    }
    return n;
}

std::string
Inst::disasm() const
{
    std::ostringstream os;
    os << opcodeName(op);
    if (isVec() && cls() == InstClass::VecOperate)
        os << (dt == DataType::T ? "t" : "q")
           << (mode == VecMode::VS ? ".vs" : ".vv");
    else if (isVec() && (cls() == InstClass::VecLoad ||
                         cls() == InstClass::VecStore))
        os << (dt == DataType::T ? "t" : "q");
    if (underMask)
        os << ".m";
    os << " ";

    auto r = [](const char *pfx, RegIndex i) {
        std::ostringstream s;
        s << pfx << static_cast<int>(i);
        return s.str();
    };

    switch (cls()) {
      case InstClass::IntAlu:
        os << r("r", rd) << ", " << r("r", ra);
        if (immValid)
            os << ", #" << imm;
        else if (op != Opcode::Lda)
            os << ", " << r("r", rb);
        break;
      case InstClass::FpAlu:
        os << r("f", rd) << ", " << r("f", ra) << ", " << r("f", rb);
        break;
      case InstClass::Load:
        os << (op == Opcode::Ldt ? r("f", rd) : r("r", rd)) << ", "
           << imm << "(" << r("r", rb) << ")";
        break;
      case InstClass::Store:
        os << (op == Opcode::Stt ? r("f", ra) : r("r", ra)) << ", "
           << imm << "(" << r("r", rb) << ")";
        break;
      case InstClass::Branch:
        if (op != Opcode::Br)
            os << r("r", ra) << ", ";
        os << "@" << target;
        break;
      case InstClass::Misc:
        break;
      case InstClass::VecOperate:
        os << r("v", rd) << ", " << r("v", ra) << ", ";
        if (mode == VecMode::VS) {
            if (immValid)
                os << "#" << (dt == DataType::T ? fimm : double(imm));
            else
                os << (dt == DataType::T ? r("f", rb) : r("r", rb));
        } else {
            os << r("v", rb);
        }
        break;
      case InstClass::VecLoad:
        os << r("v", rd) << ", " << imm << "(" << r("r", rb) << ")";
        if (op == Opcode::Vgath)
            os << " [" << r("v", ra) << "]";
        break;
      case InstClass::VecStore:
        os << r("v", ra) << ", " << imm << "(" << r("r", rb) << ")";
        if (op == Opcode::Vscat)
            os << " [" << r("v", rd) << "]";
        break;
      case InstClass::VecControl:
        switch (op) {
          case Opcode::Setvl:
          case Opcode::Setvs:
            if (immValid)
                os << "#" << imm;
            else
                os << r("r", ra);
            break;
          case Opcode::Setvm:
            os << r("v", ra);
            break;
          case Opcode::Viota:
            os << r("v", rd);
            break;
          case Opcode::Vslidedown:
            os << r("v", rd) << ", " << r("v", ra) << ", #" << imm;
            break;
          case Opcode::Vextract:
            os << (dt == DataType::T ? r("f", rd) : r("r", rd)) << ", "
               << r("v", ra);
            if (immValid)
                os << ", #" << imm;
            else
                os << ", " << r("r", rb);
            break;
          case Opcode::Vinsert:
            os << r("v", rd) << ", "
               << (dt == DataType::T ? r("f", ra) : r("r", ra));
            if (immValid)
                os << ", #" << imm;
            else
                os << ", " << r("r", rb);
            break;
          default:
            break;
        }
        break;
    }
    return os.str();
}

} // namespace tarantula::isa
