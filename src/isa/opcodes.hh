/**
 * @file
 * Opcode and operand-class definitions for the simulated ISA.
 *
 * The scalar portion is a functional subset of the Alpha ISA (integer
 * quadword ops, IEEE T-format floating point, loads/stores, branches).
 * The vector portion is the Tarantula extension: 45 new instructions
 * (not counting data-type variations), grouped -- as in the paper --
 * into vector-vector operate (VV), vector-scalar operate (VS), strided
 * memory (SM), random memory (RM) and vector control (VC).
 *
 * Data-type variation (quadword integer vs. T-format double) is a field
 * of the instruction, not a separate opcode, mirroring the paper's
 * counting convention. The under-mask specifier is likewise a modifier.
 */

#ifndef TARANTULA_ISA_OPCODES_HH
#define TARANTULA_ISA_OPCODES_HH

#include <cstdint>

namespace tarantula::isa
{

/** Every operation the simulator can execute. */
enum class Opcode : std::uint8_t
{
    // ---- scalar integer operate -------------------------------------
    Addq,       ///< Rc = Ra + Rb/imm
    Subq,       ///< Rc = Ra - Rb/imm
    Mulq,       ///< Rc = Ra * Rb/imm
    And,        ///< bitwise and
    Or,         ///< bitwise or (BIS); also the canonical register move
    Xor,        ///< bitwise xor
    Sll,        ///< shift left logical
    Srl,        ///< shift right logical
    Sra,        ///< shift right arithmetic
    Cmpeq,      ///< Rc = (Ra == Rb/imm) ? 1 : 0
    Cmplt,      ///< signed less-than compare
    Cmple,      ///< signed less-or-equal compare
    Cmpult,     ///< unsigned less-than compare
    Lda,        ///< Rc = Ra + imm (address/constant formation)

    // ---- scalar floating point (T = IEEE double) --------------------
    Addt,       ///< Fc = Fa + Fb
    Subt,       ///< Fc = Fa - Fb
    Mult,       ///< Fc = Fa * Fb
    Divt,       ///< Fc = Fa / Fb
    Sqrtt,      ///< Fc = sqrt(Fb)
    Cmpteq,     ///< Fc = (Fa == Fb) ? 2.0 : 0.0 (Alpha convention)
    Cmptlt,     ///< FP less-than compare
    Cmptle,     ///< FP less-or-equal compare
    Cvtqt,      ///< int -> double conversion
    Cvttq,      ///< double -> int conversion (truncate)
    Fmov,       ///< Fc = Fb (CPYS in real Alpha)
    Itoft,      ///< Fc = bits of Ra (integer-to-FP register move)
    Ftoit,      ///< Rc = bits of Fa (FP-to-integer register move)

    // ---- scalar memory ----------------------------------------------
    Ldq,        ///< Rc = MEM[Ra + imm] (quadword)
    Stq,        ///< MEM[Ra + imm] = Rc
    Ldt,        ///< Fc = MEM[Ra + imm] (double)
    Stt,        ///< MEM[Ra + imm] = Fc
    Prefetch,   ///< non-binding line prefetch into L1 (ECB-style)
    Wh64,       ///< write hint: allocate line without fetching
    DrainM,     ///< scalar/vector coherency barrier (paper section 3.4)

    // ---- scalar control ---------------------------------------------
    Br,         ///< unconditional branch
    Beq,        ///< branch if Ra == 0
    Bne,        ///< branch if Ra != 0
    Blt,        ///< branch if Ra < 0
    Bge,        ///< branch if Ra >= 0
    Ble,        ///< branch if Ra <= 0
    Bgt,        ///< branch if Ra > 0
    Fbeq,       ///< branch if Fa == 0.0
    Fbne,       ///< branch if Fa != 0.0
    Nop,        ///< no operation
    Halt,       ///< terminate the simulated program

    // ---- Tarantula vector operate (VV and VS forms) ------------------
    // Whether the second source is a vector register (VV group) or a
    // scalar register (VS group) is the instruction's `mode` field.
    Vadd,       ///< element-wise add (Q or T)
    Vsub,       ///< element-wise subtract
    Vmul,       ///< element-wise multiply
    Vdiv,       ///< element-wise divide
    Vsqrt,      ///< element-wise square root (VV form only)
    Vand,       ///< element-wise bitwise and
    Vor,        ///< element-wise bitwise or
    Vxor,       ///< element-wise bitwise xor
    Vsll,       ///< element-wise shift left logical
    Vsrl,       ///< element-wise shift right logical
    Vsra,       ///< element-wise shift right arithmetic
    Vcmpeq,     ///< element compare ==; boolean result vector
    Vcmpne,     ///< element compare !=
    Vcmplt,     ///< element compare < (signed / FP per data type)
    Vcmple,     ///< element compare <=
    Vmin,       ///< element-wise minimum
    Vmax,       ///< element-wise maximum
    Vmerge,     ///< Vc[i] = vm[i] ? Va[i] : Vb[i]/scalar
    Vfmac,      ///< fused multiply-add Vc += Va * Vb (FMAC extension)

    // ---- Tarantula strided memory (SM group) -------------------------
    Vld,        ///< Vc[i] = MEM[Rb + i*vs], i < vl
    Vst,        ///< MEM[Rb + i*vs] = Va[i], i < vl
    // ---- Tarantula random memory (RM group) --------------------------
    Vgath,      ///< Vc[i] = MEM[Rb + Va[i]] (gather)
    Vscat,      ///< MEM[Rb + Vb[i]] = Va[i] (scatter)

    // ---- Tarantula vector control (VC group) -------------------------
    Setvl,      ///< vl = min(Ra, 128)
    Setvs,      ///< vs = Ra (byte stride)
    Setvm,      ///< vm = low bit of each element of Va
    Viota,      ///< Vc[i] = i (index generation)
    Vslidedown, ///< Vc[i] = Va[i + imm] (zero-fill past the top)
    Vextract,   ///< scalar = Va[Rb] (element read to Rc or Fc per type)
    Vinsert,    ///< Vc[Rb] = scalar (element write)

    NumOpcodes
};

/** Vector operand mode: second source vector (VV) or scalar (VS). */
enum class VecMode : std::uint8_t
{
    None,   ///< not a vector-operate instruction
    VV,     ///< vector-vector
    VS      ///< vector-scalar
};

/** Element data type of a vector or scalar FP operation. */
enum class DataType : std::uint8_t
{
    Q,      ///< 64-bit integer quadword
    T       ///< IEEE double-precision (Alpha T format)
};

/** Broad instruction classes used by the timing models. */
enum class InstClass : std::uint8_t
{
    IntAlu,         ///< scalar integer operate
    FpAlu,          ///< scalar FP operate
    Load,           ///< scalar load
    Store,          ///< scalar store
    Branch,         ///< scalar control transfer
    Misc,           ///< nop/halt/barriers/prefetch
    VecOperate,     ///< vector arithmetic (VV or VS)
    VecLoad,        ///< vector strided load or gather
    VecStore,       ///< vector strided store or scatter
    VecControl      ///< setvl/setvs/setvm and friends
};

/** The paper's five-way grouping of the new vector instructions. */
enum class VecGroup : std::uint8_t
{
    NotVector,
    VV,     ///< vector-vector operate
    VS,     ///< vector-scalar operate
    SM,     ///< strided memory access
    RM,     ///< random memory access
    VC      ///< vector control
};

namespace detail
{
/** Out-of-line unknown-opcode panic (keeps base/logging.hh out of
 *  this header; the hot classification paths below stay inline). */
[[noreturn]] InstClass badOpcode(Opcode op);
} // namespace detail

/**
 * Map an opcode (plus its vector mode) to its timing class.
 *
 * Inline and constexpr: this is the single hottest query in the
 * simulator (every issue/retire/stats touch point classifies its
 * instruction), and as a dense switch the compiler lowers it to a
 * lookup table at every call site instead of an out-of-line call.
 */
constexpr InstClass
instClass(Opcode op)
{
    switch (op) {
      case Opcode::Addq:
      case Opcode::Subq:
      case Opcode::Mulq:
      case Opcode::And:
      case Opcode::Or:
      case Opcode::Xor:
      case Opcode::Sll:
      case Opcode::Srl:
      case Opcode::Sra:
      case Opcode::Cmpeq:
      case Opcode::Cmplt:
      case Opcode::Cmple:
      case Opcode::Cmpult:
      case Opcode::Lda:
      case Opcode::Ftoit:
        return InstClass::IntAlu;

      case Opcode::Addt:
      case Opcode::Subt:
      case Opcode::Mult:
      case Opcode::Divt:
      case Opcode::Sqrtt:
      case Opcode::Cmpteq:
      case Opcode::Cmptlt:
      case Opcode::Cmptle:
      case Opcode::Cvtqt:
      case Opcode::Cvttq:
      case Opcode::Fmov:
      case Opcode::Itoft:
        return InstClass::FpAlu;

      case Opcode::Ldq:
      case Opcode::Ldt:
        return InstClass::Load;

      case Opcode::Stq:
      case Opcode::Stt:
        return InstClass::Store;

      case Opcode::Br:
      case Opcode::Beq:
      case Opcode::Bne:
      case Opcode::Blt:
      case Opcode::Bge:
      case Opcode::Ble:
      case Opcode::Bgt:
      case Opcode::Fbeq:
      case Opcode::Fbne:
        return InstClass::Branch;

      case Opcode::Prefetch:
      case Opcode::Wh64:
      case Opcode::DrainM:
      case Opcode::Nop:
      case Opcode::Halt:
        return InstClass::Misc;

      case Opcode::Vadd:
      case Opcode::Vsub:
      case Opcode::Vmul:
      case Opcode::Vdiv:
      case Opcode::Vsqrt:
      case Opcode::Vand:
      case Opcode::Vor:
      case Opcode::Vxor:
      case Opcode::Vsll:
      case Opcode::Vsrl:
      case Opcode::Vsra:
      case Opcode::Vcmpeq:
      case Opcode::Vcmpne:
      case Opcode::Vcmplt:
      case Opcode::Vcmple:
      case Opcode::Vmin:
      case Opcode::Vmax:
      case Opcode::Vmerge:
      case Opcode::Vfmac:
        return InstClass::VecOperate;

      case Opcode::Vld:
      case Opcode::Vgath:
        return InstClass::VecLoad;

      case Opcode::Vst:
      case Opcode::Vscat:
        return InstClass::VecStore;

      case Opcode::Setvl:
      case Opcode::Setvs:
      case Opcode::Setvm:
      case Opcode::Viota:
      case Opcode::Vslidedown:
      case Opcode::Vextract:
      case Opcode::Vinsert:
        return InstClass::VecControl;

      default:
        return detail::badOpcode(op);
    }
}

/** Map an opcode (plus mode) to the paper's vector grouping. */
constexpr VecGroup
vecGroup(Opcode op, VecMode mode)
{
    switch (instClass(op)) {
      case InstClass::VecOperate:
        return mode == VecMode::VS ? VecGroup::VS : VecGroup::VV;
      case InstClass::VecLoad:
      case InstClass::VecStore:
        return (op == Opcode::Vgath || op == Opcode::Vscat)
            ? VecGroup::RM : VecGroup::SM;
      case InstClass::VecControl:
        return VecGroup::VC;
      default:
        return VecGroup::NotVector;
    }
}

/** True for any Tarantula vector-extension opcode. */
constexpr bool
isVector(Opcode op)
{
    switch (instClass(op)) {
      case InstClass::VecOperate:
      case InstClass::VecLoad:
      case InstClass::VecStore:
      case InstClass::VecControl:
        return true;
      default:
        return false;
    }
}

/** Mnemonic string for disassembly. */
const char *opcodeName(Opcode op);

} // namespace tarantula::isa

#endif // TARANTULA_ISA_OPCODES_HH
