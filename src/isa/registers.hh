/**
 * @file
 * Architectural register identifiers and the unified flat register
 * numbering used for dependency tracking in the timing models.
 */

#ifndef TARANTULA_ISA_REGISTERS_HH
#define TARANTULA_ISA_REGISTERS_HH

#include <cstdint>

namespace tarantula::isa
{

/** Index of a register within its class (0..31). */
using RegIndex = std::uint8_t;

constexpr RegIndex ZeroReg = 31;    ///< r31 / f31 / v31 read as zero

/** Register classes in the unified flat numbering. */
enum class RegClass : std::uint8_t
{
    IntReg,     ///< scalar integer r0..r31
    FpReg,      ///< scalar floating point f0..f31
    VecReg,     ///< vector v0..v31
    CtrlReg     ///< vl, vs, vm
};

/** Control register indices within RegClass::CtrlReg. */
enum CtrlRegIndex : std::uint8_t
{
    CtrlVl = 0,     ///< vector length (8-bit)
    CtrlVs = 1,     ///< vector stride (64-bit, bytes)
    CtrlVm = 2,     ///< vector mask (128-bit)
    NumCtrlRegs = 3
};

/**
 * A flat register id combining class and index, usable as a map key in
 * the renaming and scoreboarding logic. The "invalid" value marks an
 * unused operand slot.
 */
struct RegId
{
    RegClass cls = RegClass::IntReg;
    RegIndex idx = ZeroReg;
    bool valid = false;

    constexpr RegId() = default;
    constexpr RegId(RegClass c, RegIndex i) : cls(c), idx(i), valid(true)
    {
    }

    /** True for the hardwired-zero registers (and invalid slots). */
    constexpr bool
    isZero() const
    {
        return !valid ||
               (cls != RegClass::CtrlReg && idx == ZeroReg);
    }

    /** Flat number: 0..31 int, 32..63 fp, 64..95 vec, 96..98 ctrl. */
    constexpr unsigned
    flat() const
    {
        return static_cast<unsigned>(cls) * 32 + idx;
    }

    constexpr bool
    operator==(const RegId &other) const
    {
        return valid == other.valid && cls == other.cls &&
               idx == other.idx;
    }
};

constexpr unsigned NumFlatRegs = 32 * 3 + NumCtrlRegs;

constexpr RegId intReg(RegIndex i) { return {RegClass::IntReg, i}; }
constexpr RegId fpReg(RegIndex i) { return {RegClass::FpReg, i}; }
constexpr RegId vecReg(RegIndex i) { return {RegClass::VecReg, i}; }
constexpr RegId
ctrlReg(CtrlRegIndex i)
{
    return {RegClass::CtrlReg, static_cast<RegIndex>(i)};
}

} // namespace tarantula::isa

#endif // TARANTULA_ISA_REGISTERS_HH
