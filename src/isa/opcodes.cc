#include "isa/opcodes.hh"

#include "base/logging.hh"

namespace tarantula::isa
{

InstClass
instClass(Opcode op)
{
    switch (op) {
      case Opcode::Addq:
      case Opcode::Subq:
      case Opcode::Mulq:
      case Opcode::And:
      case Opcode::Or:
      case Opcode::Xor:
      case Opcode::Sll:
      case Opcode::Srl:
      case Opcode::Sra:
      case Opcode::Cmpeq:
      case Opcode::Cmplt:
      case Opcode::Cmple:
      case Opcode::Cmpult:
      case Opcode::Lda:
      case Opcode::Ftoit:
        return InstClass::IntAlu;

      case Opcode::Addt:
      case Opcode::Subt:
      case Opcode::Mult:
      case Opcode::Divt:
      case Opcode::Sqrtt:
      case Opcode::Cmpteq:
      case Opcode::Cmptlt:
      case Opcode::Cmptle:
      case Opcode::Cvtqt:
      case Opcode::Cvttq:
      case Opcode::Fmov:
      case Opcode::Itoft:
        return InstClass::FpAlu;

      case Opcode::Ldq:
      case Opcode::Ldt:
        return InstClass::Load;

      case Opcode::Stq:
      case Opcode::Stt:
        return InstClass::Store;

      case Opcode::Br:
      case Opcode::Beq:
      case Opcode::Bne:
      case Opcode::Blt:
      case Opcode::Bge:
      case Opcode::Ble:
      case Opcode::Bgt:
      case Opcode::Fbeq:
      case Opcode::Fbne:
        return InstClass::Branch;

      case Opcode::Prefetch:
      case Opcode::Wh64:
      case Opcode::DrainM:
      case Opcode::Nop:
      case Opcode::Halt:
        return InstClass::Misc;

      case Opcode::Vadd:
      case Opcode::Vsub:
      case Opcode::Vmul:
      case Opcode::Vdiv:
      case Opcode::Vsqrt:
      case Opcode::Vand:
      case Opcode::Vor:
      case Opcode::Vxor:
      case Opcode::Vsll:
      case Opcode::Vsrl:
      case Opcode::Vsra:
      case Opcode::Vcmpeq:
      case Opcode::Vcmpne:
      case Opcode::Vcmplt:
      case Opcode::Vcmple:
      case Opcode::Vmin:
      case Opcode::Vmax:
      case Opcode::Vmerge:
      case Opcode::Vfmac:
        return InstClass::VecOperate;

      case Opcode::Vld:
      case Opcode::Vgath:
        return InstClass::VecLoad;

      case Opcode::Vst:
      case Opcode::Vscat:
        return InstClass::VecStore;

      case Opcode::Setvl:
      case Opcode::Setvs:
      case Opcode::Setvm:
      case Opcode::Viota:
      case Opcode::Vslidedown:
      case Opcode::Vextract:
      case Opcode::Vinsert:
        return InstClass::VecControl;

      default:
        panic("isa: instClass: unknown opcode %d", static_cast<int>(op));
    }
}

VecGroup
vecGroup(Opcode op, VecMode mode)
{
    switch (instClass(op)) {
      case InstClass::VecOperate:
        return mode == VecMode::VS ? VecGroup::VS : VecGroup::VV;
      case InstClass::VecLoad:
      case InstClass::VecStore:
        return (op == Opcode::Vgath || op == Opcode::Vscat)
            ? VecGroup::RM : VecGroup::SM;
      case InstClass::VecControl:
        return VecGroup::VC;
      default:
        return VecGroup::NotVector;
    }
}

bool
isVector(Opcode op)
{
    switch (instClass(op)) {
      case InstClass::VecOperate:
      case InstClass::VecLoad:
      case InstClass::VecStore:
      case InstClass::VecControl:
        return true;
      default:
        return false;
    }
}

const char *
opcodeName(Opcode op)
{
    switch (op) {
      case Opcode::Addq: return "addq";
      case Opcode::Subq: return "subq";
      case Opcode::Mulq: return "mulq";
      case Opcode::And: return "and";
      case Opcode::Or: return "bis";
      case Opcode::Xor: return "xor";
      case Opcode::Sll: return "sll";
      case Opcode::Srl: return "srl";
      case Opcode::Sra: return "sra";
      case Opcode::Cmpeq: return "cmpeq";
      case Opcode::Cmplt: return "cmplt";
      case Opcode::Cmple: return "cmple";
      case Opcode::Cmpult: return "cmpult";
      case Opcode::Lda: return "lda";
      case Opcode::Addt: return "addt";
      case Opcode::Subt: return "subt";
      case Opcode::Mult: return "mult";
      case Opcode::Divt: return "divt";
      case Opcode::Sqrtt: return "sqrtt";
      case Opcode::Cmpteq: return "cmpteq";
      case Opcode::Cmptlt: return "cmptlt";
      case Opcode::Cmptle: return "cmptle";
      case Opcode::Cvtqt: return "cvtqt";
      case Opcode::Cvttq: return "cvttq";
      case Opcode::Fmov: return "fmov";
      case Opcode::Itoft: return "itoft";
      case Opcode::Ftoit: return "ftoit";
      case Opcode::Ldq: return "ldq";
      case Opcode::Stq: return "stq";
      case Opcode::Ldt: return "ldt";
      case Opcode::Stt: return "stt";
      case Opcode::Prefetch: return "prefetch";
      case Opcode::Wh64: return "wh64";
      case Opcode::DrainM: return "drainm";
      case Opcode::Br: return "br";
      case Opcode::Beq: return "beq";
      case Opcode::Bne: return "bne";
      case Opcode::Blt: return "blt";
      case Opcode::Bge: return "bge";
      case Opcode::Ble: return "ble";
      case Opcode::Bgt: return "bgt";
      case Opcode::Fbeq: return "fbeq";
      case Opcode::Fbne: return "fbne";
      case Opcode::Nop: return "nop";
      case Opcode::Halt: return "halt";
      case Opcode::Vadd: return "vadd";
      case Opcode::Vsub: return "vsub";
      case Opcode::Vmul: return "vmul";
      case Opcode::Vdiv: return "vdiv";
      case Opcode::Vsqrt: return "vsqrt";
      case Opcode::Vand: return "vand";
      case Opcode::Vor: return "vor";
      case Opcode::Vxor: return "vxor";
      case Opcode::Vsll: return "vsll";
      case Opcode::Vsrl: return "vsrl";
      case Opcode::Vsra: return "vsra";
      case Opcode::Vcmpeq: return "vcmpeq";
      case Opcode::Vcmpne: return "vcmpne";
      case Opcode::Vcmplt: return "vcmplt";
      case Opcode::Vcmple: return "vcmple";
      case Opcode::Vmin: return "vmin";
      case Opcode::Vmax: return "vmax";
      case Opcode::Vmerge: return "vmerge";
      case Opcode::Vfmac: return "vfmac";
      case Opcode::Vld: return "vld";
      case Opcode::Vst: return "vst";
      case Opcode::Vgath: return "vgath";
      case Opcode::Vscat: return "vscat";
      case Opcode::Setvl: return "setvl";
      case Opcode::Setvs: return "setvs";
      case Opcode::Setvm: return "setvm";
      case Opcode::Viota: return "viota";
      case Opcode::Vslidedown: return "vslidedown";
      case Opcode::Vextract: return "vextract";
      case Opcode::Vinsert: return "vinsert";
      default: return "<bad>";
    }
}

} // namespace tarantula::isa
