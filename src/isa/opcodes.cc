#include "isa/opcodes.hh"

#include "base/logging.hh"

namespace tarantula::isa
{

namespace detail
{

InstClass
badOpcode(Opcode op)
{
    panic("isa: instClass: unknown opcode %d", static_cast<int>(op));
}

} // namespace detail

const char *
opcodeName(Opcode op)
{
    switch (op) {
      case Opcode::Addq: return "addq";
      case Opcode::Subq: return "subq";
      case Opcode::Mulq: return "mulq";
      case Opcode::And: return "and";
      case Opcode::Or: return "bis";
      case Opcode::Xor: return "xor";
      case Opcode::Sll: return "sll";
      case Opcode::Srl: return "srl";
      case Opcode::Sra: return "sra";
      case Opcode::Cmpeq: return "cmpeq";
      case Opcode::Cmplt: return "cmplt";
      case Opcode::Cmple: return "cmple";
      case Opcode::Cmpult: return "cmpult";
      case Opcode::Lda: return "lda";
      case Opcode::Addt: return "addt";
      case Opcode::Subt: return "subt";
      case Opcode::Mult: return "mult";
      case Opcode::Divt: return "divt";
      case Opcode::Sqrtt: return "sqrtt";
      case Opcode::Cmpteq: return "cmpteq";
      case Opcode::Cmptlt: return "cmptlt";
      case Opcode::Cmptle: return "cmptle";
      case Opcode::Cvtqt: return "cvtqt";
      case Opcode::Cvttq: return "cvttq";
      case Opcode::Fmov: return "fmov";
      case Opcode::Itoft: return "itoft";
      case Opcode::Ftoit: return "ftoit";
      case Opcode::Ldq: return "ldq";
      case Opcode::Stq: return "stq";
      case Opcode::Ldt: return "ldt";
      case Opcode::Stt: return "stt";
      case Opcode::Prefetch: return "prefetch";
      case Opcode::Wh64: return "wh64";
      case Opcode::DrainM: return "drainm";
      case Opcode::Br: return "br";
      case Opcode::Beq: return "beq";
      case Opcode::Bne: return "bne";
      case Opcode::Blt: return "blt";
      case Opcode::Bge: return "bge";
      case Opcode::Ble: return "ble";
      case Opcode::Bgt: return "bgt";
      case Opcode::Fbeq: return "fbeq";
      case Opcode::Fbne: return "fbne";
      case Opcode::Nop: return "nop";
      case Opcode::Halt: return "halt";
      case Opcode::Vadd: return "vadd";
      case Opcode::Vsub: return "vsub";
      case Opcode::Vmul: return "vmul";
      case Opcode::Vdiv: return "vdiv";
      case Opcode::Vsqrt: return "vsqrt";
      case Opcode::Vand: return "vand";
      case Opcode::Vor: return "vor";
      case Opcode::Vxor: return "vxor";
      case Opcode::Vsll: return "vsll";
      case Opcode::Vsrl: return "vsrl";
      case Opcode::Vsra: return "vsra";
      case Opcode::Vcmpeq: return "vcmpeq";
      case Opcode::Vcmpne: return "vcmpne";
      case Opcode::Vcmplt: return "vcmplt";
      case Opcode::Vcmple: return "vcmple";
      case Opcode::Vmin: return "vmin";
      case Opcode::Vmax: return "vmax";
      case Opcode::Vmerge: return "vmerge";
      case Opcode::Vfmac: return "vfmac";
      case Opcode::Vld: return "vld";
      case Opcode::Vst: return "vst";
      case Opcode::Vgath: return "vgath";
      case Opcode::Vscat: return "vscat";
      case Opcode::Setvl: return "setvl";
      case Opcode::Setvs: return "setvs";
      case Opcode::Setvm: return "setvm";
      case Opcode::Viota: return "viota";
      case Opcode::Vslidedown: return "vslidedown";
      case Opcode::Vextract: return "vextract";
      case Opcode::Vinsert: return "vinsert";
      default: return "<bad>";
    }
}

} // namespace tarantula::isa
