/**
 * @file
 * The banked second-level cache, the centerpiece of Tarantula's memory
 * system (paper section 3.4).
 *
 * Physical organization: 16 banks (bank = address bits <9:6>), 8 ways,
 * 64-byte lines. One slice enters the pipeline per cycle; its up-to-16
 * addresses hit distinct banks by construction, so all 16 tag lookups
 * and data reads proceed in parallel.
 *
 * Modeled mechanisms:
 *  - MAF (Miss Address File): a slice with one or more misses is "put
 *    to sleep" with a waiting bit per missing address; fills arriving
 *    from the Zbox search the MAF and clear matching waiting bits;
 *    when all are clear the slice moves to the Retry Queue and walks
 *    the pipe again.
 *  - Replay threshold / panic mode: a slice that replays more than the
 *    threshold forces the MAF to NACK all competing requests until the
 *    starved slice is serviced (livelock avoidance).
 *  - PUMP: stride-1 slices with the pump bit read 16 whole lines into
 *    a per-bank register and stream 32 qw/cycle to the Vbox (reads) or
 *    accumulate 32 qw/cycle and write the array in one cycle (writes),
 *    doubling stride-1 bandwidth (Figure 4 / Figure 9).
 *  - Scalar-vector coherency: each tag carries a P-bit set by scalar
 *    (core-side) accesses. Vector accesses that touch a P-bit line
 *    trigger an invalidate to the L1; evicting a P-bit line does too.
 */

#ifndef TARANTULA_CACHE_L2_CACHE_HH
#define TARANTULA_CACHE_L2_CACHE_HH

#include <array>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <optional>
#include <unordered_map>
#include <vector>

#include "base/statistics.hh"
#include "base/types.hh"
#include "check/integrity.hh"
#include "mem/mem_types.hh"
#include "mem/slice.hh"
#include "mem/zbox.hh"
#include "snap/snapshot.hh"
#include "trace/trace.hh"

namespace tarantula::cache
{

/** Configuration for the L2 model. */
struct L2Config
{
    std::uint64_t sizeBytes = 16ULL << 20;  ///< 16 MB (Table 3)
    unsigned assoc = 8;
    unsigned hitLatency = 16;       ///< lookup+read+transport pipeline
    unsigned scalarHitLatency = 16; ///< scalar request pipe latency
    unsigned mafEntries = 32;
    unsigned retryThreshold = 8;    ///< replays before panic mode
    unsigned pumpStreamCycles = 4;  ///< cycles to stream 128 qw
    unsigned invalidatePenalty = 6; ///< extra cycles per P-bit hit
};

/** Scalar-side completion notice. */
struct ScalarResp
{
    Addr lineAddr = 0;
    std::uint64_t tag = 0;
    bool isWrite = false;
    Cycle readyAt = 0;
    unsigned requester = 0;     ///< core id in CMP configurations
};

/** The L2 cache; see file comment. */
class L2Cache
{
  public:
    /**
     * @param num_requesters  Cores sharing this cache (DESIGN.md §11).
     *        With more than one, the per-cycle bank arbiter engages
     *        (requests from different cores contending for the same
     *        bank in one cycle bounce) and the per-core grant/attempt
     *        counters feeding the system.fairness checker exist. With
     *        exactly one, behaviour -- and the statistics-tree shape
     *        -- is bit-identical to the pre-CMP single-owner cache.
     */
    L2Cache(const L2Config &cfg, mem::Zbox &zbox,
            stats::StatGroup &parent, unsigned num_requesters = 1);

    // ---- vector (Vbox) side -------------------------------------------
    /**
     * Offer a slice to the pipeline on behalf of core @p requester.
     * At most one slice is accepted per cycle; acceptance also fails
     * while the MAF is full, panic mode is NACKing, the required data
     * bus is busy (pump streams), or -- in CMP configurations -- any
     * of the slice's banks was already granted to another core this
     * cycle.
     */
    bool acceptSlice(const mem::Slice &slice, unsigned requester = 0);

    /** Next completed slice for @p requester's Vbox, if any. */
    std::optional<mem::SliceResp>
    dequeueSliceResp(unsigned requester = 0);

    // ---- scalar (core/L1) side ------------------------------------------
    /**
     * Request a line on behalf of the core. Sets the P-bit. Writes
     * are write-through arriving from the core's write buffer.
     *
     * @param no_fetch  wh64 semantics: on a miss, allocate the line
     *                  without fetching (only the directory transition
     *                  goes to memory).
     * @return false when no MAF entry is free (retry later).
     */
    bool scalarRequest(Addr line_addr, bool is_write, std::uint64_t tag,
                       bool no_fetch = false, unsigned requester = 0);

    /** Next completed scalar request for @p requester, if any. */
    std::optional<ScalarResp> dequeueScalarResp(unsigned requester = 0);

    /** Hook invoked with the line address of every L1 invalidate. */
    void
    setL1InvalidateHook(std::function<void(Addr)> hook)
    {
        l1Invalidate_ = std::move(hook);
    }

    /** Advance one cycle: drain fills, run retry/new slice, scalars. */
    void cycle();

    /**
     * Quiescence contract (DESIGN.md §8): the earliest future cycle at
     * which this cache could do or hand out work on its own. Replays
     * and deferred Zbox requests act every cycle, so they pin the
     * horizon at now+1; otherwise the cache sleeps until a buffered
     * response matures. Fills from memory wake MAF sleepers, but those
     * are the Zbox's events and appear in *its* horizon.
     */
    Cycle nextEventCycle() const;

    /** Skip @p delta provably event-free cycles (clock only). */
    void fastForward(Cycle delta) { now_ += delta; }

    /** True when nothing is pending anywhere in the cache. */
    bool idle() const;

    /**
     * Join the machine's integrity kit: registers the l2.maf checker
     * (MAF/pending-line conservation and transaction age), the inline
     * l2.slice conflict-freedom check, and a forensics probe; arms
     * fault injection.
     */
    void attachIntegrity(check::Integrity &kit);

    /**
     * Join the observability trace (DESIGN.md §9): slice, MAF-sleep
     * and conflict events flow to the sink's "l2" channel. Read-only:
     * never affects timing or statistics.
     */
    void attachTrace(trace::TraceSink &sink);

    /** Direct-install a line (warmup); no timing, no P-bit. */
    void warmLine(Addr line_addr);

    /** True if the line is present (tests/checkers). */
    bool probe(Addr line_addr) const;

    /** P-bit of a resident line (tests). */
    bool probePBit(Addr line_addr) const;

    const L2Config &config() const { return cfg_; }

    // Stats accessors used by benches.
    std::uint64_t sliceAccesses() const { return slices_.value(); }
    std::uint64_t sliceReplays() const { return replays_.value(); }
    std::uint64_t panicEntries() const { return panics_.value(); }
    std::uint64_t l1Invalidates() const { return invalidates_.value(); }

    // ---- CMP arbitration observability (zero when single-owner) -----
    /** Cores sharing this cache. */
    unsigned numRequesters() const { return numRequesters_; }
    /** Cross-core same-bank bounces this cache has issued. */
    std::uint64_t
    bankConflicts() const
    {
        return bankConflicts_ ? bankConflicts_->value() : 0;
    }
    /** Requests core @p r won a pipe slot for (fairness checker). */
    std::uint64_t
    grantsFor(unsigned r) const
    {
        return r < grantsPerCore_.size() ? grantsPerCore_[r]->value()
                                         : 0;
    }
    /** Requests core @p r offered, granted or not (fairness checker). */
    std::uint64_t
    attemptsFor(unsigned r) const
    {
        return r < attemptsPerCore_.size()
                   ? attemptsPerCore_[r]->value()
                   : 0;
    }
    /** Offers core @p r lost to another core's bank claim (fairness
     *  checker: grants vs bounces is the contested-offer record). */
    std::uint64_t
    bouncesFor(unsigned r) const
    {
        return r < bouncesPerCore_.size()
                   ? bouncesPerCore_[r]->value()
                   : 0;
    }

    // ---- snapshot (DESIGN.md §10) -------------------------------------
    /** Stats are restored by the Processor's whole-tree pass. */
    void save(snap::Snapshotter &out) const;
    void restore(snap::Restorer &in);

  private:
    struct Line
    {
        bool valid = false;
        bool dirty = false;
        bool pBit = false;
        std::uint64_t tag = 0;
        std::uint64_t lastUse = 0;
    };

    struct MafEntry
    {
        bool valid = false;
        bool isScalar = false;
        mem::Slice slice;
        std::uint64_t scalarTag = 0;
        Addr scalarLine = 0;
        bool scalarWrite = false;
        bool scalarNoFetch = false;
        /** Owning core, for scalar AND slice entries (CMP configs). */
        unsigned requester = 0;
        std::uint16_t waiting = 0;  ///< bit per slice element
        unsigned replays = 0;
        bool inRetryQueue = false;
        Cycle bornAt = 0;           ///< allocation cycle (age checker)
    };

    /**
     * Per-cycle bank arbiter (CMP only): true when every bank in
     * @p banks is free or already owned by @p requester this cycle.
     * On success the banks are claimed; on failure the cross-core
     * bounce is counted against @p requester.
     */
    bool claimBanks_(std::uint16_t banks, unsigned requester);
    /** Bank mask of a slice's valid elements. */
    static std::uint16_t banksOf_(const mem::Slice &slice);

    unsigned setOf(Addr line_addr) const;
    std::uint64_t tagOf(Addr line_addr) const;
    Line *findLine(Addr line_addr);
    const Line *findLine(Addr line_addr) const;
    /** Install a fill; returns false if the victim way is blocked. */
    void installLine(Addr line_addr, bool as_dirty, bool p_bit);
    void handleFill(const mem::MemResponse &resp);
    /** Run one slice through the tag pipe; true if it completed. */
    bool processSlice(unsigned maf_idx);
    void processScalar(unsigned maf_idx);
    int allocMaf();
    void requestLine(Addr line_addr, bool exclusive);

    L2Config cfg_;
    mem::Zbox &zbox_;
    unsigned numSets_;
    std::vector<Line> lines_;       ///< [set * assoc + way]
    std::vector<MafEntry> maf_;
    std::deque<unsigned> retryQueue_;
    std::deque<mem::SliceResp> sliceResps_;
    std::deque<ScalarResp> scalarResps_;
    /**
     * Lines already requested from memory (dedup across MAF), mapped
     * to the cycle the request was first issued (age checker).
     */
    std::unordered_map<Addr, Cycle> pendingLines_;
    /** Zbox requests that bounced off a full port queue. */
    std::deque<mem::MemRequest> deferredReqs_;
    std::function<void(Addr)> l1Invalidate_;

    void
    rec(const char *what, std::uint64_t a = 0, std::uint64_t b = 0)
    {
        if (ring_)
            ring_->record(now_, what, a, b);
        if (trace_)
            trace_->instant(now_, what, a, b);
    }

    /** Trace-only event: too frequent for the forensic ring. */
    void
    trc(const char *what, std::uint64_t a = 0, std::uint64_t b = 0)
    {
        if (trace_)
            trace_->instant(now_, what, a, b);
    }

    check::FaultPlan *faults_ = nullptr;
    check::EventRing *ring_ = nullptr;
    trace::TraceChannel *trace_ = nullptr;
    bool checks_ = false;

    Cycle now_ = 0;
    bool acceptedThisCycle_ = false;
    Cycle readBusFreeAt_ = 0;
    Cycle writeBusFreeAt_ = 0;
    int panicMaf_ = -1;             ///< MAF index being protected
    std::uint64_t useClock_ = 0;    ///< LRU timestamp source

    // ---- CMP bank arbitration (DESIGN.md §11) -----------------------
    unsigned numRequesters_ = 1;
    /**
     * Per-cycle grant state: owner core of each of the 16 banks this
     * cycle, or -1. Reset at the top of cycle() before any request of
     * the new cycle can read it (the machine steps the L2 before the
     * Vboxes and cores), claimed by retry-queue replays first and then
     * by the cores in their round-robin step order.
     */
    std::array<int, NumLanes> bankOwner_{};

    stats::StatGroup statGroup_;
    stats::Scalar slices_;
    stats::Scalar sliceHits_;
    stats::Scalar sliceMisses_;
    stats::Scalar pumpSlices_;
    stats::Scalar scalarReqs_;
    stats::Scalar scalarMisses_;
    stats::Scalar replays_;
    stats::Scalar panics_;
    stats::Scalar invalidates_;
    stats::Scalar writebacks_;
    stats::Scalar mafFullRejects_;

    /**
     * CMP-only statistics, created only when numRequesters_ > 1 so the
     * single-core statistics tree keeps its exact pre-CMP shape (the
     * shape is part of the snapshot stats payload and the golden-stats
     * bytes). Indexed by core id.
     */
    std::unique_ptr<stats::Scalar> bankConflicts_;
    std::vector<std::unique_ptr<stats::Scalar>> grantsPerCore_;
    std::vector<std::unique_ptr<stats::Scalar>> attemptsPerCore_;
    std::vector<std::unique_ptr<stats::Scalar>> bouncesPerCore_;
};

} // namespace tarantula::cache

#endif // TARANTULA_CACHE_L2_CACHE_HH
