#include "cache/l2_cache.hh"

#include <algorithm>
#include <cstdio>
#include <string>

#include "base/bitfield.hh"
#include "base/logging.hh"

namespace tarantula::cache
{

using mem::MemCmd;
using mem::MemRequest;
using mem::MemResponse;
using mem::Slice;
using mem::SliceResp;

L2Cache::L2Cache(const L2Config &cfg, mem::Zbox &zbox,
                 stats::StatGroup &parent, unsigned num_requesters)
    : cfg_(cfg),
      zbox_(zbox),
      statGroup_("l2", &parent),
      slices_(statGroup_, "slices", "vector slices that entered the pipe"),
      sliceHits_(statGroup_, "slice_hits", "slices completing on lookup"),
      sliceMisses_(statGroup_, "slice_misses",
                   "slices put to sleep in the MAF"),
      pumpSlices_(statGroup_, "pump_slices", "stride-1 pump-mode slices"),
      scalarReqs_(statGroup_, "scalar_reqs", "scalar (core-side) requests"),
      scalarMisses_(statGroup_, "scalar_misses", "scalar request misses"),
      replays_(statGroup_, "replays", "slice retry-queue replays"),
      panics_(statGroup_, "panics", "MAF panic-mode entries"),
      invalidates_(statGroup_, "l1_invalidates",
                   "invalidate commands sent to the L1 (P-bit protocol)"),
      writebacks_(statGroup_, "writebacks", "dirty victim writebacks"),
      mafFullRejects_(statGroup_, "maf_full_rejects",
                      "requests rejected because the MAF was full")
{
    if (!isPowerOf2(cfg.sizeBytes) || cfg.assoc == 0)
        fatal("l2: size must be a power of two and assoc non-zero");
    numSets_ = static_cast<unsigned>(
        cfg.sizeBytes / (CacheLineBytes * cfg.assoc));
    if (!isPowerOf2(numSets_) || numSets_ < NumLanes)
        fatal("l2: bad set count %u", numSets_);
    lines_.resize(static_cast<std::size_t>(numSets_) * cfg.assoc);
    maf_.resize(cfg.mafEntries);

    numRequesters_ = num_requesters == 0 ? 1 : num_requesters;
    bankOwner_.fill(-1);
    if (numRequesters_ > 1) {
        bankConflicts_ = std::make_unique<stats::Scalar>(
            statGroup_, "bank_conflicts",
            "cross-core same-bank bounces (CMP arbiter)");
        for (unsigned r = 0; r < numRequesters_; ++r) {
            const std::string c = "core" + std::to_string(r);
            grantsPerCore_.push_back(std::make_unique<stats::Scalar>(
                statGroup_, "grants_" + c,
                "requests granted a pipe slot to " + c));
            attemptsPerCore_.push_back(
                std::make_unique<stats::Scalar>(
                    statGroup_, "attempts_" + c,
                    "requests offered by " + c + " (granted or not)"));
            bouncesPerCore_.push_back(
                std::make_unique<stats::Scalar>(
                    statGroup_, "bounces_" + c,
                    "requests " + c + " lost to another core's bank"));
        }
    }
}

std::uint16_t
L2Cache::banksOf_(const Slice &slice)
{
    std::uint16_t banks = 0;
    for (unsigned i = 0; i < NumLanes; ++i) {
        if (slice.elems[i].valid) {
            banks |= static_cast<std::uint16_t>(
                1u << mem::bankOf(slice.elems[i].addr));
        }
    }
    return banks;
}

bool
L2Cache::claimBanks_(std::uint16_t banks, unsigned requester)
{
    if (numRequesters_ <= 1)
        return true;
    for (unsigned b = 0; b < NumLanes; ++b) {
        if (!(banks & (1u << b)))
            continue;
        if (bankOwner_[b] >= 0 &&
            bankOwner_[b] != static_cast<int>(requester)) {
            ++*bankConflicts_;
            ++*bouncesPerCore_[requester];
            trc("bank_conflict", b, requester);
            return false;
        }
    }
    for (unsigned b = 0; b < NumLanes; ++b) {
        if (banks & (1u << b))
            bankOwner_[b] = static_cast<int>(requester);
    }
    return true;
}

unsigned
L2Cache::setOf(Addr line_addr) const
{
    return static_cast<unsigned>((line_addr / CacheLineBytes) &
                                 (numSets_ - 1));
}

std::uint64_t
L2Cache::tagOf(Addr line_addr) const
{
    return (line_addr / CacheLineBytes) / numSets_;
}

L2Cache::Line *
L2Cache::findLine(Addr line_addr)
{
    const unsigned set = setOf(line_addr);
    const std::uint64_t tag = tagOf(line_addr);
    Line *base = &lines_[static_cast<std::size_t>(set) * cfg_.assoc];
    for (unsigned w = 0; w < cfg_.assoc; ++w) {
        if (base[w].valid && base[w].tag == tag)
            return &base[w];
    }
    return nullptr;
}

const L2Cache::Line *
L2Cache::findLine(Addr line_addr) const
{
    return const_cast<L2Cache *>(this)->findLine(line_addr);
}

void
L2Cache::installLine(Addr line_addr, bool as_dirty, bool p_bit)
{
    const unsigned set = setOf(line_addr);
    Line *base = &lines_[static_cast<std::size_t>(set) * cfg_.assoc];

    // Pick an invalid way, else the LRU way.
    Line *victim = &base[0];
    for (unsigned w = 0; w < cfg_.assoc; ++w) {
        if (!base[w].valid) {
            victim = &base[w];
            break;
        }
        if (base[w].lastUse < victim->lastUse)
            victim = &base[w];
    }

    if (victim->valid) {
        const Addr victim_addr =
            (victim->tag * numSets_ + set) * CacheLineBytes;
        if (victim->dirty) {
            ++writebacks_;
            MemRequest wb;
            wb.lineAddr = victim_addr;
            wb.cmd = MemCmd::Writeback;
            if (!zbox_.enqueue(wb))
                deferredReqs_.push_back(wb);
        }
        if (victim->pBit) {
            ++invalidates_;
            if (l1Invalidate_)
                l1Invalidate_(victim_addr);
        }
    }

    victim->valid = true;
    victim->dirty = as_dirty;
    victim->pBit = p_bit;
    victim->tag = tagOf(line_addr);
    victim->lastUse = ++useClock_;
}

void
L2Cache::requestLine(Addr line_addr, bool exclusive)
{
    if (pendingLines_.count(line_addr))
        return;     // already on its way; the fill wakes all waiters
    pendingLines_.emplace(line_addr, now_);
    MemRequest req;
    req.lineAddr = line_addr;
    req.cmd = exclusive ? MemCmd::ReadExclusive : MemCmd::ReadShared;
    if (!zbox_.enqueue(req))
        deferredReqs_.push_back(req);
}

int
L2Cache::allocMaf()
{
    for (unsigned i = 0; i < maf_.size(); ++i) {
        if (!maf_[i].valid)
            return static_cast<int>(i);
    }
    return -1;
}

// ---- vector side --------------------------------------------------------

bool
L2Cache::acceptSlice(const Slice &slice, unsigned requester)
{
    if (numRequesters_ > 1) {
        tarantula_assert(requester < numRequesters_);
        ++*attemptsPerCore_[requester];
    }
    if (acceptedThisCycle_ || panicMaf_ >= 0)
        return false;
    // Fault injection: the arbiter starves the vector port.
    if (faults_ &&
        faults_->active(check::Fault::GrantDelay, now_)) {
        rec("grant_delay", slice.id);
        return false;
    }
    // Conflict-freedom is the slicer's contract: the up-to-16
    // addresses of a slice hit distinct banks so all lookups proceed
    // in parallel. A violation means the plan is corrupt.
    if (checks_) {
        std::uint16_t banks_seen = 0;
        for (unsigned i = 0; i < NumLanes; ++i) {
            if (!slice.elems[i].valid)
                continue;
            const std::uint16_t bit = static_cast<std::uint16_t>(
                1u << mem::bankOf(slice.elems[i].addr));
            if (banks_seen & bit) {
                check::CheckerRegistry::fail(
                    "l2.slice", now_,
                    "slice " + std::to_string(slice.id) +
                        " has two elements on bank " +
                        std::to_string(
                            mem::bankOf(slice.elems[i].addr)));
            }
            banks_seen |= bit;
        }
    }
    const int idx = allocMaf();
    if (idx < 0) {
        ++mafFullRejects_;
        rec("maf_full", slice.id);
        return false;
    }
    // CMP bank arbiter: a slice whose banks another core already owns
    // this cycle bounces (the Vbox retries next cycle, exactly like
    // MAF backpressure).
    if (!claimBanks_(banksOf_(slice), requester))
        return false;

    MafEntry &e = maf_[idx];
    e = MafEntry{};
    e.valid = true;
    e.isScalar = false;
    e.slice = slice;
    e.requester = requester;
    e.bornAt = now_;

    acceptedThisCycle_ = true;
    ++slices_;
    if (numRequesters_ > 1)
        ++*grantsPerCore_[requester];
    if (slice.pump)
        ++pumpSlices_;
    trc("slice", slice.id, slice.pump);
    processSlice(static_cast<unsigned>(idx));
    return true;
}

bool
L2Cache::processSlice(unsigned maf_idx)
{
    MafEntry &e = maf_[maf_idx];
    // Fault injection: NACK every lookup for the window. The slice
    // bounces through the Retry Queue, its replay count climbs past
    // the threshold, and panic mode must engage (livelock avoidance).
    if (faults_ &&
        faults_->active(check::Fault::ReplayStorm, now_)) {
        rec("replay_storm_nack", e.slice.id, e.replays);
        if (!e.inRetryQueue) {
            e.inRetryQueue = true;
            retryQueue_.push_back(maf_idx);
        }
        return false;
    }
    const Slice &s = e.slice;
    unsigned extra = 0;     // invalidate penalties
    e.waiting = 0;

    // For pump writes that overwrite whole lines we allocate without
    // fetching, paying only the directory transition (wh64-style).
    const bool no_fetch_alloc = s.pump && s.isWrite;

    for (unsigned i = 0; i < NumLanes; ++i) {
        const auto &el = s.elems[i];
        if (!el.valid)
            continue;
        const Addr line_addr = roundDown(el.addr, CacheLineBytes);
        Line *line = findLine(line_addr);
        if (line) {
            line->lastUse = ++useClock_;
            if (s.isWrite)
                line->dirty = true;
            if (line->pBit) {
                // The core may hold this line in its L1: synchronize.
                // Fault injection: lose the invalidate, leaving a
                // stale L1 copy for coherency.pbit to catch.
                if (faults_ && faults_->fire(
                        check::Fault::SkipInvalidate, now_)) {
                    rec("skip_invalidate", line_addr);
                } else {
                    ++invalidates_;
                    extra += cfg_.invalidatePenalty;
                    if (l1Invalidate_)
                        l1Invalidate_(line_addr);
                }
                line->pBit = false;
            }
        } else if (no_fetch_alloc) {
            installLine(line_addr, /*as_dirty=*/true, /*p_bit=*/false);
            MemRequest dir;
            dir.lineAddr = line_addr;
            dir.cmd = MemCmd::DirOnly;
            if (!zbox_.enqueue(dir))
                deferredReqs_.push_back(dir);
        } else {
            e.waiting |= static_cast<std::uint16_t>(1u << i);
            requestLine(line_addr, s.isWrite);
        }
    }

    if (e.waiting != 0) {
        ++sliceMisses_;
        rec("slice_sleep", s.id, e.waiting);
        return false;       // slice sleeps in the MAF
    }

    ++sliceHits_;
    const Cycle base = now_ + cfg_.hitLatency + extra;
    SliceResp resp;
    resp.sliceId = s.id;
    resp.instTag = s.instTag;
    resp.isWrite = s.isWrite;
    resp.dataQw = s.dataQw();
    resp.requester = e.requester;

    if (s.isWrite) {
        Cycle start = base > writeBusFreeAt_ ? base : writeBusFreeAt_;
        if (s.pump) {
            // 32 qw/cycle accumulate for four cycles; the single-cycle
            // ECC+array write overlaps the next slice's accumulation.
            writeBusFreeAt_ = start + cfg_.pumpStreamCycles;
            resp.readyAt = start + cfg_.pumpStreamCycles + 1;
        } else {
            writeBusFreeAt_ = start + 1;
            resp.readyAt = start + 1;
        }
    } else {
        Cycle start = base > readBusFreeAt_ ? base : readBusFreeAt_;
        if (s.pump) {
            readBusFreeAt_ = start + cfg_.pumpStreamCycles;
            resp.readyAt = start + cfg_.pumpStreamCycles;
        } else {
            readBusFreeAt_ = start + 1;
            resp.readyAt = start + 1;
        }
    }

    sliceResps_.push_back(resp);
    if (panicMaf_ == static_cast<int>(maf_idx))
        panicMaf_ = -1;     // starving slice serviced; resume normal ops
    e.valid = false;
    return true;
}

std::optional<SliceResp>
L2Cache::dequeueSliceResp(unsigned requester)
{
    for (auto it = sliceResps_.begin(); it != sliceResps_.end(); ++it) {
        if (it->readyAt <= now_ && it->requester == requester) {
            SliceResp r = *it;
            sliceResps_.erase(it);
            return r;
        }
    }
    return std::nullopt;
}

// ---- scalar side ----------------------------------------------------------

bool
L2Cache::scalarRequest(Addr line_addr, bool is_write, std::uint64_t tag,
                       bool no_fetch, unsigned requester)
{
    if (numRequesters_ > 1) {
        tarantula_assert(requester < numRequesters_);
        ++*attemptsPerCore_[requester];
    }
    if (panicMaf_ >= 0)
        return false;       // MAF is NACKing all competing requests
    const int idx = allocMaf();
    if (idx < 0) {
        ++mafFullRejects_;
        trc("maf_full_scalar", line_addr, tag);
        return false;
    }
    // CMP bank arbiter: one bank per scalar request.
    if (!claimBanks_(static_cast<std::uint16_t>(
                         1u << mem::bankOf(line_addr)),
                     requester)) {
        return false;
    }
    MafEntry &e = maf_[idx];
    e = MafEntry{};
    e.valid = true;
    e.isScalar = true;
    e.bornAt = now_;
    e.scalarLine = roundDown(line_addr, CacheLineBytes);
    e.scalarWrite = is_write;
    e.scalarNoFetch = no_fetch;
    e.requester = requester;
    e.scalarTag = tag;
    ++scalarReqs_;
    if (numRequesters_ > 1)
        ++*grantsPerCore_[requester];
    processScalar(static_cast<unsigned>(idx));
    return true;
}

void
L2Cache::processScalar(unsigned maf_idx)
{
    MafEntry &e = maf_[maf_idx];
    Line *line = findLine(e.scalarLine);
    if (!line && e.scalarNoFetch) {
        // wh64: allocate without fetching; only the directory
        // transition (Invalid -> Dirty) goes out to memory.
        ++scalarMisses_;
        installLine(e.scalarLine, /*as_dirty=*/true, /*p_bit=*/true);
        mem::MemRequest dir;
        dir.lineAddr = e.scalarLine;
        dir.cmd = MemCmd::DirOnly;
        if (!zbox_.enqueue(dir))
            deferredReqs_.push_back(dir);
        line = findLine(e.scalarLine);
    }
    if (!line) {
        ++scalarMisses_;
        e.waiting = 1;
        requestLine(e.scalarLine, e.scalarWrite);
        return;
    }
    line->lastUse = ++useClock_;
    line->pBit = true;      // the core now (potentially) holds it in L1
    if (e.scalarWrite)
        line->dirty = true;

    ScalarResp resp;
    resp.lineAddr = e.scalarLine;
    resp.requester = e.requester;
    resp.tag = e.scalarTag;
    resp.isWrite = e.scalarWrite;
    resp.readyAt = now_ + cfg_.scalarHitLatency;
    scalarResps_.push_back(resp);
    if (panicMaf_ == static_cast<int>(maf_idx))
        panicMaf_ = -1;
    e.valid = false;
}

std::optional<ScalarResp>
L2Cache::dequeueScalarResp(unsigned requester)
{
    for (auto it = scalarResps_.begin(); it != scalarResps_.end(); ++it) {
        if (it->readyAt <= now_ && it->requester == requester) {
            ScalarResp r = *it;
            scalarResps_.erase(it);
            return r;
        }
    }
    return std::nullopt;
}

// ---- fills and the clock -------------------------------------------------

void
L2Cache::handleFill(const MemResponse &resp)
{
    if (resp.cmd == MemCmd::Writeback || resp.cmd == MemCmd::DirOnly)
        return;     // completion acknowledgements; nothing to install

    installLine(resp.lineAddr, /*as_dirty=*/false, /*p_bit=*/false);
    pendingLines_.erase(resp.lineAddr);

    // The arriving line searches the MAF for matching addresses and
    // clears their waiting bits (paper: "Servicing Vector Misses").
    for (unsigned i = 0; i < maf_.size(); ++i) {
        MafEntry &e = maf_[i];
        if (!e.valid || e.waiting == 0)
            continue;
        if (e.isScalar) {
            if (e.scalarLine == resp.lineAddr) {
                e.waiting = 0;
                if (!e.inRetryQueue) {
                    e.inRetryQueue = true;
                    retryQueue_.push_back(i);
                }
            }
            continue;
        }
        for (unsigned j = 0; j < NumLanes; ++j) {
            if (!(e.waiting & (1u << j)))
                continue;
            const Addr el_line =
                roundDown(e.slice.elems[j].addr, CacheLineBytes);
            if (el_line == resp.lineAddr)
                e.waiting &= static_cast<std::uint16_t>(~(1u << j));
        }
        if (e.waiting == 0 && !e.inRetryQueue) {
            e.inRetryQueue = true;
            retryQueue_.push_back(i);
        }
    }
}

void
L2Cache::cycle()
{
    ++now_;
    acceptedThisCycle_ = false;
    // New arbitration cycle: all 16 banks up for grabs again. This
    // runs before any Vbox or core of the same machine cycle can
    // offer a request (the System steps the L2 first), so the grant
    // state never leaks across cycles.
    if (numRequesters_ > 1)
        bankOwner_.fill(-1);

    // Re-issue memory requests that bounced off a full Zbox queue.
    while (!deferredReqs_.empty()) {
        if (!zbox_.enqueue(deferredReqs_.front()))
            break;
        deferredReqs_.pop_front();
    }

    // Absorb fills from memory.
    while (auto resp = zbox_.dequeueResponse())
        handleFill(*resp);

    // The retry queue has priority for the single pipe slot per cycle.
    if (!retryQueue_.empty()) {
        const unsigned idx = retryQueue_.front();
        retryQueue_.pop_front();
        MafEntry &e = maf_[idx];
        e.inRetryQueue = false;
        if (e.valid) {
            acceptedThisCycle_ = true;
            // Replays have absolute priority over new requests, so
            // they claim their banks first (always free this early in
            // the cycle).
            if (numRequesters_ > 1) {
                claimBanks_(e.isScalar
                                ? static_cast<std::uint16_t>(
                                      1u << mem::bankOf(e.scalarLine))
                                : banksOf_(e.slice),
                            e.requester);
            }
            ++e.replays;
            ++replays_;
            if (e.replays > cfg_.retryThreshold && panicMaf_ < 0) {
                panicMaf_ = static_cast<int>(idx);
                ++panics_;
                rec("panic_mode_enter", idx, e.replays);
            }
            if (e.isScalar)
                processScalar(idx);
            else
                processSlice(idx);
        }
    }
}

Cycle
L2Cache::nextEventCycle() const
{
    // Retry-queue replays and deferred Zbox enqueues run (and count
    // stats) every cycle they are pending: no skipping over them.
    if (!retryQueue_.empty() || !deferredReqs_.empty())
        return now_ + 1;
    Cycle next = CycleNever;
    for (const auto &resp : sliceResps_)
        next = std::min(next, std::max(resp.readyAt, now_ + 1));
    for (const auto &resp : scalarResps_)
        next = std::min(next, std::max(resp.readyAt, now_ + 1));
    return next;
}

bool
L2Cache::idle() const
{
    if (!retryQueue_.empty() || !deferredReqs_.empty() ||
        !sliceResps_.empty() || !scalarResps_.empty()) {
        return false;
    }
    for (const auto &e : maf_) {
        if (e.valid)
            return false;
    }
    return true;
}

void
L2Cache::attachIntegrity(check::Integrity &kit)
{
    faults_ = kit.faults();
    ring_ = kit.ring("l2");
    checks_ = kit.checksEnabled();

    const Cycle max_age = kit.config().maxTransactionAge;
    kit.registry().add(
        "l2.maf",
        [this, max_age](Cycle now, std::vector<std::string> &v) {
            // Every sleeping MAF entry must be young enough, and each
            // of its waiting bits must map to a line the L2 actually
            // has on request (credit conservation with pendingLines_:
            // a dropped fill orphans both and ages out here).
            for (std::size_t i = 0; i < maf_.size(); ++i) {
                const MafEntry &e = maf_[i];
                if (!e.valid)
                    continue;
                if (max_age && now >= e.bornAt &&
                    now - e.bornAt > max_age) {
                    v.push_back(
                        "MAF entry " + std::to_string(i) +
                        (e.isScalar ? " (scalar)" : " (slice)") +
                        " sleeping " + std::to_string(now - e.bornAt) +
                        " cycles, replays " +
                        std::to_string(e.replays));
                }
                if (e.waiting == 0)
                    continue;
                if (e.isScalar) {
                    if (!pendingLines_.count(e.scalarLine)) {
                        v.push_back("scalar MAF entry " +
                                    std::to_string(i) +
                                    " waits on a line with no "
                                    "pending fetch");
                    }
                    continue;
                }
                for (unsigned j = 0; j < NumLanes; ++j) {
                    if (!(e.waiting & (1u << j)))
                        continue;
                    const Addr el_line = roundDown(
                        e.slice.elems[j].addr, CacheLineBytes);
                    if (!pendingLines_.count(el_line)) {
                        v.push_back(
                            "MAF entry " + std::to_string(i) +
                            " lane " + std::to_string(j) +
                            " waits on a line with no pending fetch");
                    }
                }
            }
            // The inverse: no requested line may wait forever for its
            // fill, and every retry-queue index must name a valid,
            // flagged entry.
            for (const auto &[line, born] : pendingLines_) {
                if (max_age && now >= born && now - born > max_age) {
                    char buf[96];
                    std::snprintf(
                        buf, sizeof(buf),
                        "line 0x%llx requested %llu cycles ago; "
                        "fill never arrived",
                        static_cast<unsigned long long>(line),
                        static_cast<unsigned long long>(now - born));
                    v.push_back(buf);
                }
            }
            for (const unsigned idx : retryQueue_) {
                if (idx >= maf_.size() || !maf_[idx].valid ||
                    !maf_[idx].inRetryQueue) {
                    v.push_back("retry queue holds stale MAF index " +
                                std::to_string(idx));
                }
            }
        });

    kit.forensics().addProbe("l2", [this](JsonWriter &w) {
        unsigned occupied = 0;
        for (const auto &e : maf_) {
            if (e.valid)
                ++occupied;
        }
        w.key("mafOccupancy").value(occupied);
        w.key("mafEntries")
            .value(static_cast<std::uint64_t>(maf_.size()));
        w.key("retryQueueDepth")
            .value(static_cast<std::uint64_t>(retryQueue_.size()));
        w.key("sliceRespsPending")
            .value(static_cast<std::uint64_t>(sliceResps_.size()));
        w.key("scalarRespsPending")
            .value(static_cast<std::uint64_t>(scalarResps_.size()));
        w.key("deferredReqs")
            .value(static_cast<std::uint64_t>(deferredReqs_.size()));
        w.key("panicMaf").value(panicMaf_);
        w.key("replays").value(replays_.value());
        w.key("panics").value(panics_.value());
        // The in-flight transaction table (bounded dump).
        w.key("pendingLines").beginArray();
        std::size_t dumped = 0;
        for (const auto &[line, born] : pendingLines_) {
            if (dumped++ >= 16)
                break;
            w.beginObject();
            w.key("line").value(std::uint64_t{line});
            w.key("born").value(static_cast<std::uint64_t>(born));
            w.endObject();
        }
        w.endArray();
        w.key("pendingLinesTotal")
            .value(static_cast<std::uint64_t>(pendingLines_.size()));
    });
}

void
L2Cache::attachTrace(trace::TraceSink &sink)
{
    trace_ = &sink.channel("l2");
}

void
L2Cache::warmLine(Addr line_addr)
{
    const Addr aligned = roundDown(line_addr, CacheLineBytes);
    if (!findLine(aligned))
        installLine(aligned, false, false);
}

bool
L2Cache::probe(Addr line_addr) const
{
    return findLine(roundDown(line_addr, CacheLineBytes)) != nullptr;
}

bool
L2Cache::probePBit(Addr line_addr) const
{
    const Line *l = findLine(roundDown(line_addr, CacheLineBytes));
    return l && l->pBit;
}

void
L2Cache::save(snap::Snapshotter &out) const
{
    out.section("l2");
    out.u64(now_);
    out.b(acceptedThisCycle_);
    out.u64(readBusFreeAt_);
    out.u64(writeBusFreeAt_);
    out.i64(panicMaf_);
    out.u64(useClock_);

    out.u64(lines_.size());
    for (const auto &l : lines_) {
        out.b(l.valid);
        out.b(l.dirty);
        out.b(l.pBit);
        out.u64(l.tag);
        out.u64(l.lastUse);
    }

    out.u64(maf_.size());
    for (const auto &e : maf_) {
        out.b(e.valid);
        out.b(e.isScalar);
        e.slice.save(out);
        out.u64(e.scalarTag);
        out.u64(e.scalarLine);
        out.b(e.scalarWrite);
        out.b(e.scalarNoFetch);
        out.u32(e.requester);
        out.u16(e.waiting);
        out.u32(e.replays);
        out.b(e.inRetryQueue);
        out.u64(e.bornAt);
    }

    out.u64(retryQueue_.size());
    for (unsigned idx : retryQueue_)
        out.u32(idx);

    out.u64(sliceResps_.size());
    for (const auto &r : sliceResps_) {
        out.u64(r.sliceId);
        out.u64(r.instTag);
        out.b(r.isWrite);
        out.u64(r.readyAt);
        out.u32(r.dataQw);
        out.u32(r.requester);   // payload v2 (absent in v1 files)
    }

    out.u64(scalarResps_.size());
    for (const auto &r : scalarResps_) {
        out.u64(r.lineAddr);
        out.u64(r.tag);
        out.b(r.isWrite);
        out.u64(r.readyAt);
        out.u32(r.requester);
    }

    // pendingLines_ is only looked up and erased by key, never
    // iterated on the simulation path; saved sorted so the payload is
    // byte-identical regardless of hashing history.
    std::vector<std::pair<Addr, Cycle>> pending(pendingLines_.begin(),
                                                pendingLines_.end());
    std::sort(pending.begin(), pending.end());
    out.u64(pending.size());
    for (const auto &[line, born] : pending) {
        out.u64(line);
        out.u64(born);
    }

    out.u64(deferredReqs_.size());
    for (const auto &req : deferredReqs_)
        req.save(out);
}

void
L2Cache::restore(snap::Restorer &in)
{
    in.section("l2");
    now_ = in.u64();
    acceptedThisCycle_ = in.b();
    readBusFreeAt_ = in.u64();
    writeBusFreeAt_ = in.u64();
    panicMaf_ = static_cast<int>(in.i64());
    useClock_ = in.u64();

    if (in.u64() != lines_.size())
        throw snap::SnapshotError("snapshot: l2 line count mismatch");
    for (auto &l : lines_) {
        l.valid = in.b();
        l.dirty = in.b();
        l.pBit = in.b();
        l.tag = in.u64();
        l.lastUse = in.u64();
    }

    if (in.u64() != maf_.size())
        throw snap::SnapshotError("snapshot: l2 MAF size mismatch");
    for (auto &e : maf_) {
        e.valid = in.b();
        e.isScalar = in.b();
        e.slice.restore(in);
        e.scalarTag = in.u64();
        e.scalarLine = in.u64();
        e.scalarWrite = in.b();
        e.scalarNoFetch = in.b();
        e.requester = in.u32();
        e.waiting = in.u16();
        e.replays = in.u32();
        e.inRetryQueue = in.b();
        e.bornAt = in.u64();
    }

    retryQueue_.resize(in.u64());
    for (auto &idx : retryQueue_)
        idx = in.u32();

    sliceResps_.resize(in.u64());
    for (auto &r : sliceResps_) {
        r.sliceId = in.u64();
        r.instTag = in.u64();
        r.isWrite = in.b();
        r.readyAt = in.u64();
        r.dataQw = in.u32();
        // Version-1 files predate the CMP refactor: single-core, so
        // every in-flight slice belonged to requester 0.
        r.requester = in.version() >= 2 ? in.u32() : 0;
    }

    scalarResps_.resize(in.u64());
    for (auto &r : scalarResps_) {
        r.lineAddr = in.u64();
        r.tag = in.u64();
        r.isWrite = in.b();
        r.readyAt = in.u64();
        r.requester = in.u32();
    }

    pendingLines_.clear();
    const std::uint64_t numPending = in.u64();
    for (std::uint64_t i = 0; i < numPending; ++i) {
        const Addr line = in.u64();
        pendingLines_[line] = in.u64();
    }

    deferredReqs_.resize(in.u64());
    for (auto &req : deferredReqs_)
        req.restore(in);
}

} // namespace tarantula::cache
