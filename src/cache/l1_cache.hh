/**
 * @file
 * The first-level data cache tag model.
 *
 * EV8's L1 D-cache per Table 3: 2-way set-associative, 64-byte lines.
 * The core's load/store pipeline owns all timing; this class is the
 * tag/LRU state plus the invalidate entry point used by the L2's
 * P-bit scalar-vector coherency protocol. The L1 is modeled
 * write-through (stores drain from the core's write buffer straight
 * to the L2), so invalidates never need a writeback.
 */

#ifndef TARANTULA_CACHE_L1_CACHE_HH
#define TARANTULA_CACHE_L1_CACHE_HH

#include <cstdint>
#include <functional>
#include <vector>

#include "base/bitfield.hh"
#include "base/logging.hh"
#include "base/statistics.hh"
#include "base/types.hh"
#include "snap/snapshot.hh"

namespace tarantula::cache
{

/** Configuration for the L1 tag model. */
struct L1Config
{
    std::uint64_t sizeBytes = 64 << 10;
    unsigned assoc = 2;
};

/** L1 data-cache tags; see file comment. */
class L1Cache
{
  public:
    L1Cache(const L1Config &cfg, stats::StatGroup &parent)
        : cfg_(cfg),
          statGroup_("l1", &parent),
          hits_(statGroup_, "hits", "L1 lookup hits"),
          misses_(statGroup_, "misses", "L1 lookup misses"),
          invalidates_(statGroup_, "invalidates",
                       "lines invalidated by the L2 P-bit protocol")
    {
        if (!isPowerOf2(cfg.sizeBytes) || cfg.assoc == 0)
            fatal("l1: size must be a power of two, assoc non-zero");
        numSets_ = static_cast<unsigned>(
            cfg.sizeBytes / (CacheLineBytes * cfg.assoc));
        lines_.resize(static_cast<std::size_t>(numSets_) * cfg.assoc);
    }

    /** Probe and touch; true on hit. */
    bool
    lookup(Addr addr)
    {
        Line *l = find(addr);
        if (l) {
            l->lastUse = ++useClock_;
            ++hits_;
            return true;
        }
        ++misses_;
        return false;
    }

    /** Probe without touching or counting (tests). */
    bool
    probe(Addr addr) const
    {
        return const_cast<L1Cache *>(this)->find(addr) != nullptr;
    }

    /** Install a line, evicting LRU if needed. */
    void
    fill(Addr addr)
    {
        if (find(addr))
            return;
        const unsigned set = setOf(addr);
        Line *base = &lines_[static_cast<std::size_t>(set) * cfg_.assoc];
        Line *victim = &base[0];
        for (unsigned w = 0; w < cfg_.assoc; ++w) {
            if (!base[w].valid) {
                victim = &base[w];
                break;
            }
            if (base[w].lastUse < victim->lastUse)
                victim = &base[w];
        }
        victim->valid = true;
        victim->tag = tagOf(addr);
        victim->lastUse = ++useClock_;
    }

    /** P-bit protocol entry point: drop the line if present. */
    void
    invalidate(Addr addr)
    {
        Line *l = find(addr);
        if (l) {
            l->valid = false;
            ++invalidates_;
        }
    }

    /** Visit the line address of every valid line (checkers). */
    void
    forEachLine(const std::function<void(Addr)> &fn) const
    {
        for (std::size_t i = 0; i < lines_.size(); ++i) {
            const Line &l = lines_[i];
            if (!l.valid)
                continue;
            const auto set = static_cast<std::uint64_t>(i / cfg_.assoc);
            fn((l.tag * numSets_ + set) * CacheLineBytes);
        }
    }

    std::uint64_t numHits() const { return hits_.value(); }
    std::uint64_t numMisses() const { return misses_.value(); }
    std::uint64_t numInvalidates() const { return invalidates_.value(); }

    // ---- snapshot (DESIGN.md §10) -------------------------------------
    /** Stats are restored by the Processor's whole-tree pass. */
    void
    save(snap::Snapshotter &out) const
    {
        out.section("l1");
        out.u64(useClock_);
        for (const auto &l : lines_) {
            out.b(l.valid);
            out.u64(l.tag);
            out.u64(l.lastUse);
        }
    }

    void
    restore(snap::Restorer &in)
    {
        in.section("l1");
        useClock_ = in.u64();
        for (auto &l : lines_) {
            l.valid = in.b();
            l.tag = in.u64();
            l.lastUse = in.u64();
        }
    }

  private:
    struct Line
    {
        bool valid = false;
        std::uint64_t tag = 0;
        std::uint64_t lastUse = 0;
    };

    unsigned
    setOf(Addr addr) const
    {
        return static_cast<unsigned>((addr / CacheLineBytes) &
                                     (numSets_ - 1));
    }

    std::uint64_t
    tagOf(Addr addr) const
    {
        return (addr / CacheLineBytes) / numSets_;
    }

    Line *
    find(Addr addr)
    {
        const unsigned set = setOf(addr);
        const std::uint64_t tag = tagOf(addr);
        Line *base = &lines_[static_cast<std::size_t>(set) * cfg_.assoc];
        for (unsigned w = 0; w < cfg_.assoc; ++w) {
            if (base[w].valid && base[w].tag == tag)
                return &base[w];
        }
        return nullptr;
    }

    L1Config cfg_;
    unsigned numSets_;
    std::vector<Line> lines_;
    std::uint64_t useClock_ = 0;

    stats::StatGroup statGroup_;
    stats::Scalar hits_;
    stats::Scalar misses_;
    stats::Scalar invalidates_;
};

} // namespace tarantula::cache

#endif // TARANTULA_CACHE_L1_CACHE_HH
