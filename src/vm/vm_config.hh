/**
 * @file
 * Configuration of the OS/virtual-memory scenario layer (DESIGN.md
 * §15). Kept free of heavy includes so proc/machine_config.hh can
 * embed a VmConfig without dragging the whole VM unit in.
 *
 * Everything defaults to OFF (enabled = false): a machine built with
 * the default config charges the classic flat PALcode refill cost and
 * produces byte-identical statistics, snapshots and golden numbers to
 * a build without the VM layer at all.
 */

#ifndef TARANTULA_VM_VM_CONFIG_HH
#define TARANTULA_VM_VM_CONFIG_HH

#include <cstdint>

#include "base/types.hh"

namespace tarantula::vm
{

/** Knobs of the OS/virtual-memory scenario layer. */
struct VmConfig
{
    /**
     * Master switch. Off = the classic flat-cost refill path; nothing
     * below is consulted, no VM state exists, and every pre-VM golden
     * and snapshot byte stays identical.
     */
    bool enabled = false;
    /** Base page size (Tarantula's 512 MB pages = 29). */
    unsigned pageBits = 29;
    /**
     * Page-table walk depth: PALcode issues one PTE read per level
     * through the L2/Zbox instead of the flat PerEntryFill charge.
     */
    unsigned walkLevels = 3;
    /**
     * PTE reads may hit in the L2 (walked lines are installed there);
     * false sends every level of every walk to the Zbox uncached.
     */
    bool ptesCacheable = true;
    /**
     * Address-space count. 1 = untagged TLBs: every context switch
     * flushes everything. >1 = ASID-tagged entries: switches flush
     * only the recycled ASID's entries.
     */
    unsigned asids = 1;
    /** Context-switch period in cycles; 0 = never switch. */
    std::uint64_t switchEvery = 0;
    /**
     * Huge-page region: addresses at or above hugeBase map with
     * hugePageBits-sized pages while the rest of the address space
     * keeps pageBits. hugePageBits = 0 disables the region (uniform
     * page size).
     */
    unsigned hugePageBits = 0;
    Addr hugeBase = 0;
    /** OS handler cost of a minor (first-touch) page fault. */
    Cycle minorFaultCycles = 400;
    /** Extra cost when a first touch is a major fault (I/O wait). */
    Cycle majorFaultCycles = 4000;
    /** Every Nth distinct page faulted is major; 0 = never major. */
    std::uint64_t majorFaultEvery = 0;
    /**
     * CMP TLB shootdowns: every Nth TLB insert broadcasts an
     * invalidate IPI for that page to every peer core; 0 = off.
     * Receivers invalidate immediately and pay shootdownCycles of
     * drain at their next translation event.
     */
    std::uint64_t shootdownEvery = 0;
    Cycle shootdownCycles = 120;
    /** Scalar core DTB size (fully associative). */
    unsigned scalarTlbEntries = 32;
};

} // namespace tarantula::vm

#endif // TARANTULA_VM_VM_CONFIG_HH
