/**
 * @file
 * The OS/virtual-memory scenario layer (DESIGN.md §15).
 *
 * With the layer off (the default), TLB misses cost the paper's flat
 * PALcode charge and no VM state exists anywhere. Enabled, a VmUnit
 * sits behind each core's translation paths and turns the abstract
 * refill into an operating-system scenario:
 *
 *  - PALcode refills become multi-level page-table walks issued as
 *    real memory references: one PTE read per level, serviced by the
 *    L2 (walked lines are installed there when PTEs are cacheable) or
 *    by the Zbox through the same port/bank/row/turnaround machinery
 *    as data traffic -- so translation storms genuinely steal memory
 *    bandwidth from the access that caused them.
 *  - The first touch of every page takes a minor fault charging an
 *    OS-handler cycle cost; every Nth distinct page can be made a
 *    major fault with an extra (I/O-wait) cost.
 *  - TLB entries are ASID-tagged; a context-switch scenario derives
 *    the running address space from the cycle clock and flushes
 *    either everything (asids = 1, untagged) or just the recycled
 *    ASID's entries (asids > 1) at each switch.
 *  - Huge-page and base-page mappings coexist: addresses above
 *    VmConfig::hugeBase map at hugePageBits, the rest at pageBits.
 *  - On a CMP, every Nth insert broadcasts a TLB-shootdown IPI:
 *    peers invalidate the page immediately and pay a drain cost at
 *    their next translation event.
 *
 * Everything is deterministic -- derived from the cycle clock and the
 * translation stream, never from host state -- so stepped /
 * fast-forwarded / snapshot-resumed runs stay byte-identical with the
 * layer on (enforced by tests/test_tlb.cc and the fuzz battery).
 */

#ifndef TARANTULA_VM_VM_HH
#define TARANTULA_VM_VM_HH

#include <cstdint>
#include <set>
#include <string>
#include <vector>

#include "base/statistics.hh"
#include "base/types.hh"
#include "cache/l2_cache.hh"
#include "mem/zbox.hh"
#include "snap/snapshot.hh"
#include "tlb/tlb.hh"
#include "trace/trace.hh"
#include "vm/vm_config.hh"

namespace tarantula::vm
{

/** Per-core VM unit; see file comment. */
class VmUnit
{
  public:
    /**
     * @param label      Trace-channel name ("vm" single-core,
     *                   "vm0".. in a CMP).
     * @param addr_bias  The core's CMP address-coloring bias; page
     *                   classification and page-table addresses are
     *                   computed on the unbiased address, walk traffic
     *                   is re-biased so it lands on the core's ports.
     */
    VmUnit(const VmConfig &cfg, cache::L2Cache &l2, mem::Zbox &zbox,
           stats::StatGroup &parent, const std::string &label = "vm",
           Addr addr_bias = 0);

    /** The vector TLB this unit flushes/invalidates (may be null). */
    void bindVectorTlb(tlb::VectorTlb *vtlb) { vtlb_ = vtlb; }

    /** Shootdown IPI targets (every other core's VM unit). */
    void setPeers(std::vector<VmUnit *> peers)
    {
        peers_ = std::move(peers);
    }

    /** Join the observability trace; read-only by contract. */
    void attachTrace(trace::TraceSink &sink);

    /** Page size governing @p addr (huge region vs base pages). */
    unsigned
    pageBitsFor(Addr addr) const
    {
        if (cfg_.hugePageBits && (addr & ~bias_) >= cfg_.hugeBase)
            return cfg_.hugePageBits;
        return cfg_.pageBits;
    }

    /** Address space running at cycle @p now (clock-derived). */
    std::uint16_t
    currentAsid(Cycle now) const
    {
        if (!cfg_.switchEvery || cfg_.asids <= 1)
            return 0;
        return static_cast<std::uint16_t>((now / cfg_.switchEvery) %
                                          cfg_.asids);
    }

    /**
     * Start of a vector address-generation burst: apply any pending
     * context switch, then drain pending shootdown IPIs.
     * @return Drain stall cycles to charge before translation begins.
     */
    Cycle beginVectorAccess(Cycle now);

    /**
     * Translate one scalar data access. A TLB hit costs nothing; a
     * miss walks the page table (real memory traffic) and charges any
     * fault cost. Also applies context switches and IPI drains.
     * @return Stall cycles; 0 means proceed immediately.
     */
    Cycle scalarTranslate(Addr addr, Cycle now);

    /**
     * The walk-cost replacement for tlb::VectorTlb::refill: same
     * PALcode trap semantics and dedup rules, but each inserted
     * mapping pays a real page-table walk plus fault costs.
     * @return Stall cycles charged to the refill trap.
     */
    Cycle vectorRefill(tlb::VectorTlb &vtlb, Cycle now,
                       const Addr *miss_addrs,
                       const unsigned *miss_elems, unsigned n,
                       const Addr *all_addrs,
                       const unsigned *all_elems, unsigned total);

    const VmConfig &config() const { return cfg_; }

    // ---- accounting for tests and benches ---------------------------
    std::uint64_t walks() const { return walks_.value(); }
    std::uint64_t walkCycles() const { return walkCycles_.value(); }
    std::uint64_t walkMemReads() const { return walkMemReads_.value(); }
    std::uint64_t walkL2Hits() const { return walkL2Hits_.value(); }
    std::uint64_t minorFaults() const { return minorFaults_.value(); }
    std::uint64_t majorFaults() const { return majorFaults_.value(); }
    std::uint64_t asidSwitches() const { return asidSwitches_.value(); }
    std::uint64_t shootdownsSent() const
    {
        return shootdownsSent_.value();
    }
    std::uint64_t shootdownsReceived() const
    {
        return shootdownsReceived_.value();
    }

    // ---- snapshot (DESIGN.md §10) -----------------------------------
    /** Stats are restored by the machine's whole-tree pass. */
    void save(snap::Snapshotter &out) const;
    void restore(snap::Restorer &in);

  private:
    /** Apply any context switch the clock has passed since last seen. */
    void maybeSwitch(Cycle now);
    /** Consume pending shootdown-IPI drain cycles. */
    Cycle drainShootdowns();
    /** Walk the page table for @p addr; returns the walk latency. */
    Cycle walk(Addr addr, unsigned page_bits, Cycle now);
    /** First-touch fault cost of @p addr's page (0 when warm). */
    Cycle faultCost(Addr addr, unsigned page_bits);
    /** Count an insert; broadcast a shootdown IPI every Nth. */
    void maybeShootdown(Addr addr, unsigned page_bits, Cycle now);
    /** Receive a peer's IPI: invalidate now, drain cost later. */
    void receiveShootdown(Addr unbiased_addr, unsigned page_bits,
                          Cycle now);
    /** The line address of one PTE read of @p addr's walk. */
    Addr pteLine(Addr addr, unsigned page_bits, unsigned level) const;

    VmConfig cfg_;
    cache::L2Cache &l2_;
    mem::Zbox &zbox_;
    Addr bias_ = 0;
    tlb::VectorTlb *vtlb_ = nullptr;
    std::vector<VmUnit *> peers_;
    trace::TraceChannel *trace_ = nullptr;

    tlb::Tlb scalarTlb_;

    // ---- serialized scenario state ----------------------------------
    std::uint64_t switchEpoch_ = 0;     ///< last context-switch epoch seen
    std::uint64_t insertCount_ = 0;     ///< inserts (shootdown trigger)
    Cycle pendingShootdownCycles_ = 0;  ///< IPI drain owed at next event
    /** Pages touched so far: (vpn << 6 | pageBits); ordered so the
     *  snapshot serialization is deterministic. */
    std::set<std::uint64_t> touched_;

    stats::StatGroup statGroup_;
    stats::Scalar scalarAccesses_;
    stats::Scalar scalarMisses_;
    stats::Scalar walks_;
    stats::Scalar walkLevelReads_;
    stats::Scalar walkL2Hits_;
    stats::Scalar walkMemReads_;
    stats::Scalar walkCycles_;
    stats::Scalar minorFaults_;
    stats::Scalar majorFaults_;
    stats::Scalar faultCycles_;
    stats::Scalar asidSwitches_;
    stats::Scalar asidFlushes_;
    stats::Scalar shootdownsSent_;
    stats::Scalar shootdownsReceived_;
    stats::Scalar shootdownDrainCycles_;
};

} // namespace tarantula::vm

#endif // TARANTULA_VM_VM_HH
