#include "vm/vm.hh"

#include "base/logging.hh"

namespace tarantula::vm
{

namespace
{

/**
 * Page tables live far above every workload's data (and above the CMP
 * coloring bias bits, 32..36): the walk's PTE traffic shares ports and
 * banks with data traffic but never its cache lines.
 */
constexpr Addr PteBase = 1ULL << 44;
/** Each walk level reads one 8-byte PTE from its own level table. */
constexpr unsigned PteBytes = 8;
constexpr unsigned LevelShift = 38;
/** Index bits resolved per level (a 4K-entry table per level). */
constexpr unsigned IndexBitsPerLevel = 12;

} // anonymous namespace

VmUnit::VmUnit(const VmConfig &cfg, cache::L2Cache &l2, mem::Zbox &zbox,
               stats::StatGroup &parent, const std::string &label,
               Addr addr_bias)
    : cfg_(cfg), l2_(l2), zbox_(zbox), bias_(addr_bias),
      scalarTlb_(tlb::TlbConfig{cfg.scalarTlbEntries,
                                cfg.scalarTlbEntries, cfg.pageBits}),
      statGroup_(label, &parent),
      scalarAccesses_(statGroup_, "scalar_accesses",
                      "scalar data translations"),
      scalarMisses_(statGroup_, "scalar_misses", "scalar DTB misses"),
      walks_(statGroup_, "walks", "page-table walks performed"),
      walkLevelReads_(statGroup_, "walk_level_reads",
                      "PTE reads issued across all walks"),
      walkL2Hits_(statGroup_, "walk_l2_hits", "PTE reads hitting in L2"),
      walkMemReads_(statGroup_, "walk_mem_reads",
                    "PTE reads serviced by the Zbox"),
      walkCycles_(statGroup_, "walk_cycles",
                  "stall cycles spent walking page tables"),
      minorFaults_(statGroup_, "minor_faults",
                   "first-touch (minor) page faults"),
      majorFaults_(statGroup_, "major_faults",
                   "major page faults (I/O wait)"),
      faultCycles_(statGroup_, "fault_cycles",
                   "OS-handler cycles charged to page faults"),
      asidSwitches_(statGroup_, "asid_switches",
                    "context switches observed"),
      asidFlushes_(statGroup_, "asid_flushes",
                   "TLB flushes taken at context switches"),
      shootdownsSent_(statGroup_, "shootdowns_sent",
                      "TLB shootdown IPIs broadcast"),
      shootdownsReceived_(statGroup_, "shootdowns_received",
                          "TLB shootdown IPIs received"),
      shootdownDrainCycles_(statGroup_, "shootdown_drain_cycles",
                            "stall cycles draining shootdown IPIs")
{
    if (cfg.walkLevels == 0)
        fatal("vm: walkLevels must be at least 1");
    if (cfg.asids == 0)
        fatal("vm: asids must be at least 1");
}

void
VmUnit::attachTrace(trace::TraceSink &sink)
{
    trace_ = &sink.channel(statGroup_.name());
}

Addr
VmUnit::pteLine(Addr addr, unsigned page_bits, unsigned level) const
{
    const std::uint64_t vpn = (addr & ~bias_) >> page_bits;
    // Level 0 is the root table, level walkLevels-1 the leaf: each
    // level resolves IndexBitsPerLevel more of the VPN, so upper
    // levels are shared by many pages (and hit in the L2 when PTEs
    // are cacheable) while leaf PTEs are distinct per page.
    const unsigned drop =
        IndexBitsPerLevel * (cfg_.walkLevels - 1 - level);
    const std::uint64_t idx = drop >= 64 ? 0 : (vpn >> drop);
    const Addr entry = (PteBase | (Addr(level) << LevelShift) | bias_) +
                       idx * PteBytes;
    return entry & ~static_cast<Addr>(CacheLineBytes - 1);
}

Cycle
VmUnit::walk(Addr addr, unsigned page_bits, Cycle now)
{
    ++walks_;
    Cycle total = 0;
    for (unsigned level = 0; level < cfg_.walkLevels; ++level) {
        const Addr line = pteLine(addr, page_bits, level);
        ++walkLevelReads_;
        if (cfg_.ptesCacheable && l2_.probe(line)) {
            ++walkL2Hits_;
            total += l2_.config().scalarHitLatency;
            continue;
        }
        // A real Zbox reference: occupies the port, opens/closes DRAM
        // rows and turns the bus around exactly like data traffic, so
        // a translation storm steals bandwidth from the access that
        // caused it.
        ++walkMemReads_;
        total += zbox_.walkAccess(line);
        if (cfg_.ptesCacheable)
            l2_.warmLine(line);
    }
    walkCycles_ += total;
    if (trace_)
        trace_->complete(now, total, "ptwalk", addr & ~bias_, total);
    return total;
}

Cycle
VmUnit::faultCost(Addr addr, unsigned page_bits)
{
    const std::uint64_t vpn = (addr & ~bias_) >> page_bits;
    const std::uint64_t key = (vpn << 6) | page_bits;
    if (!touched_.insert(key).second)
        return 0;
    ++minorFaults_;
    Cycle cost = cfg_.minorFaultCycles;
    if (cfg_.majorFaultEvery &&
        touched_.size() % cfg_.majorFaultEvery == 0) {
        ++majorFaults_;
        cost += cfg_.majorFaultCycles;
    }
    faultCycles_ += cost;
    return cost;
}

void
VmUnit::maybeSwitch(Cycle now)
{
    if (!cfg_.switchEvery)
        return;
    const std::uint64_t epoch = now / cfg_.switchEvery;
    if (epoch == switchEpoch_)
        return;
    switchEpoch_ = epoch;
    ++asidSwitches_;
    if (trace_)
        trace_->instant(now, "ctx_switch", epoch,
                        currentAsid(now));
    if (cfg_.asids <= 1) {
        // Untagged TLBs: a switch invalidates every translation.
        scalarTlb_.flush();
        if (vtlb_)
            vtlb_->flush();
        ++asidFlushes_;
    } else if (epoch >= cfg_.asids) {
        // Tagged TLBs flush selectively: only the recycled ASID's
        // entries go; every other address space survives the switch.
        const std::uint16_t asid = currentAsid(now);
        scalarTlb_.flushAsid(asid);
        if (vtlb_)
            vtlb_->flushAsid(asid);
        ++asidFlushes_;
    }
}

Cycle
VmUnit::drainShootdowns()
{
    const Cycle c = pendingShootdownCycles_;
    if (c) {
        pendingShootdownCycles_ = 0;
        shootdownDrainCycles_ += c;
    }
    return c;
}

void
VmUnit::maybeShootdown(Addr addr, unsigned page_bits, Cycle now)
{
    if (!cfg_.shootdownEvery || peers_.empty())
        return;
    if (++insertCount_ % cfg_.shootdownEvery != 0)
        return;
    ++shootdownsSent_;
    const Addr unbiased = addr & ~bias_;
    if (trace_)
        trace_->instant(now, "shootdown_ipi", unbiased, page_bits);
    for (VmUnit *peer : peers_)
        peer->receiveShootdown(unbiased, page_bits, now);
}

void
VmUnit::receiveShootdown(Addr unbiased_addr, unsigned page_bits,
                         Cycle now)
{
    ++shootdownsReceived_;
    // The invalidate takes effect immediately; the handler's drain
    // cost is paid at this core's next translation event, which is
    // the first point its pipeline would notice the IPI.
    pendingShootdownCycles_ += cfg_.shootdownCycles;
    const Addr local = unbiased_addr | bias_;
    scalarTlb_.invalidatePage(local, page_bits);
    if (vtlb_)
        vtlb_->invalidatePage(local, page_bits);
    if (trace_)
        trace_->instant(now, "shootdown_recv", unbiased_addr,
                        page_bits);
}

Cycle
VmUnit::beginVectorAccess(Cycle now)
{
    maybeSwitch(now);
    return drainShootdowns();
}

Cycle
VmUnit::scalarTranslate(Addr addr, Cycle now)
{
    maybeSwitch(now);
    Cycle stall = drainShootdowns();
    const unsigned pb = pageBitsFor(addr);
    const std::uint16_t asid = currentAsid(now);
    ++scalarAccesses_;
    if (scalarTlb_.lookup(addr, pb, asid))
        return stall;
    ++scalarMisses_;
    stall += walk(addr, pb, now);
    stall += faultCost(addr, pb);
    scalarTlb_.insert(addr, pb, asid);
    maybeShootdown(addr, pb, now);
    return stall;
}

Cycle
VmUnit::vectorRefill(tlb::VectorTlb &vtlb, Cycle now,
                     const Addr *miss_addrs, const unsigned *miss_elems,
                     unsigned n, const Addr *all_addrs,
                     const unsigned *all_elems, unsigned total)
{
    vtlb.countRefillTrap();
    Cycle stall = tlb::VectorTlb::TrapOverhead;
    const std::uint16_t asid = currentAsid(now);

    const bool all_lanes = vtlb.policy() == tlb::RefillPolicy::AllLanes;
    const Addr *addrs = all_lanes ? all_addrs : miss_addrs;
    const unsigned *elems = all_lanes ? all_elems : miss_elems;
    const unsigned count = all_lanes ? total : n;
    for (unsigned i = 0; i < count; ++i) {
        const unsigned pb = pageBitsFor(addrs[i]);
        tlb::Tlb &t = vtlb.lane(elems[i]);
        // Several elements of one lane may share a page; the walk is
        // only paid once per inserted mapping (same dedup rule as the
        // flat-cost refill).
        if (t.lookup(addrs[i], pb, asid))
            continue;
        stall += walk(addrs[i], pb, now);
        stall += faultCost(addrs[i], pb);
        t.insert(addrs[i], pb, asid);
        maybeShootdown(addrs[i], pb, now);
    }
    return stall;
}

void
VmUnit::save(snap::Snapshotter &out) const
{
    out.section(statGroup_.name());
    out.u64(switchEpoch_);
    out.u64(insertCount_);
    out.u64(pendingShootdownCycles_);
    out.u64(touched_.size());
    for (const std::uint64_t key : touched_)
        out.u64(key);
    scalarTlb_.save(out);
}

void
VmUnit::restore(snap::Restorer &in)
{
    in.section(statGroup_.name());
    switchEpoch_ = in.u64();
    insertCount_ = in.u64();
    pendingShootdownCycles_ = in.u64();
    touched_.clear();
    const std::uint64_t pages = in.u64();
    for (std::uint64_t i = 0; i < pages; ++i)
        touched_.insert(in.u64());
    scalarTlb_.restore(in);
}

} // namespace tarantula::vm
