/**
 * @file
 * The EV8-class out-of-order superscalar core model.
 *
 * Trace-driven, timing-directed: the functional interpreter supplies
 * the committed dynamic instruction stream; the core models fetch
 * (with a real predictor -- mispredictions stall fetch until the
 * branch resolves plus a redirect penalty), in-order dispatch into a
 * ROB, dataflow wakeup/issue with per-class bandwidths and functional
 * unit latencies, a load/store pipeline through the L1 and L2, a
 * coalescing write buffer with write-through stores, the DrainM
 * scalar-vector memory barrier, and in-order retirement.
 *
 * Vector instructions ride the paper's narrow core-Vbox interface:
 * at most three renamed vector instructions per cycle cross to the
 * Vbox, scalar operands cross on two 64-bit buses (delay modeled in
 * the Vbox), and completions return through the VCU for the core to
 * retire.
 */

#ifndef TARANTULA_EV8_CORE_HH
#define TARANTULA_EV8_CORE_HH

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "base/statistics.hh"
#include "base/types.hh"
#include "cache/l1_cache.hh"
#include "cache/l2_cache.hh"
#include "check/integrity.hh"
#include "ev8/branch_predictor.hh"
#include "exec/interp.hh"
#include "snap/snapshot.hh"
#include "trace/trace.hh"
#include "vbox/vbox.hh"

namespace tarantula::ev8
{

/** Core configuration (Table 3 parameters plus internals). */
struct CoreConfig
{
    unsigned fetchWidth = 8;
    unsigned frontendDepth = 8;     ///< fetch-to-dispatch stages
    unsigned robSize = 256;
    unsigned intIssueWidth = 8;     ///< peak Int ops/cycle
    unsigned fpIssueWidth = 4;      ///< peak FP ops/cycle
    unsigned loadPorts = 2;
    unsigned storePorts = 2;
    unsigned vecDispatchWidth = 3;  ///< Pbox -> Vbox instruction bus
    unsigned retireWidth = 8;
    unsigned mispredictPenalty = 14;
    unsigned bpTableBits = 14;

    unsigned intLatency = 1;
    unsigned mulLatency = 7;
    unsigned fpLatency = 4;
    unsigned divLatency = 12;
    unsigned sqrtLatency = 20;

    unsigned l1HitLatency = 3;
    unsigned l1MafEntries = 16;
    unsigned writeBufferEntries = 32;

    cache::L1Config l1;
};

/** The core; see file comment. */
class Core
{
  public:
    /**
     * @param cfg       Configuration.
     * @param interp    Functional interpreter (committed-path oracle).
     * @param l2        Second-level cache (scalar port).
     * @param vbox      Vector engine, or nullptr for a vector-less EV8.
     * @param core_id   Requester id on a shared L2 (CMP configs).
     * @param label     Trace-channel / forensic-ring / checker prefix
     *                  ("core" single-core, "core0".. in a CMP).
     * @param addr_bias Line-aligned bias ORed into every scalar memory
     *                  address (CMP address coloring; 0 = untouched).
     */
    Core(const CoreConfig &cfg, exec::Interpreter &interp,
         cache::L2Cache &l2, vbox::Vbox *vbox,
         stats::StatGroup &parent, unsigned core_id = 0,
         const std::string &label = "core", Addr addr_bias = 0);

    /**
     * Install the CMP cross-core staleness probe: returns true when
     * any *other* core still holds an undrained store to the line.
     * Vector loads consult it next to the local hasPendingStore()
     * detector; unset (single-core) it costs nothing.
     */
    void
    setPeerStoreProbe(std::function<bool(Addr)> probe)
    {
        peerStore_ = std::move(probe);
    }

    /** Advance one cycle through all pipeline stages. */
    void cycle();

    /**
     * Quiescence contract (DESIGN.md §8): the earliest future cycle at
     * which any pipeline stage could act. Stages that retry every
     * cycle with visible side effects (ready-but-unissued instructions
     * hitting structural hazards, write-buffer drains, dispatch, an
     * eligible fetch) pin the horizon at now+1; otherwise it is the
     * earliest scheduled completion, retirement, issue-ready time, or
     * fetch-redirect resume. L2 fills wake this core through the L2's
     * own horizon. May under-estimate, never over.
     */
    Cycle nextEventCycle() const;

    /**
     * Skip @p delta provably event-free cycles. The only visible
     * effect of an event-free cycle is a stall counter, so this adds
     * exactly what stepping would have: fetch stalls for redirect /
     * drain / resume waits, and ROB-full dispatch stalls.
     */
    void fastForward(Cycle delta);

    /** True once the program halted and every buffer drained. */
    bool done() const;

    /**
     * P-bit protocol entry point: the L2 invalidating an L1 line.
     * Also poisons any in-flight L1 fill for the line so a response
     * already in transit cannot re-install a copy the L2 no longer
     * tracks as processor-held.
     */
    void l1Invalidate(Addr line_addr);

    /**
     * Join the machine's integrity kit: registers the coherency.pbit
     * checker (every valid L1 line is present in the L2 with its
     * P-bit set) and a forensics probe; arms fault injection. The
     * coherency.drainm check runs inline at DrainM retirement.
     */
    void attachIntegrity(check::Integrity &kit);

    /**
     * Join the observability trace (DESIGN.md §9): retire, branch-
     * mispredict, LSQ and write-buffer events flow to the sink's
     * "core" channel. Read-only: never affects timing or statistics.
     */
    void attachTrace(trace::TraceSink &sink);

    /**
     * Scalar-store -> vector-load staleness check: true if a store to
     * @p line_addr is still in the store queue or write buffer (the
     * case the paper requires a DrainM for).
     */
    bool hasPendingStore(Addr line_addr) const;

    /**
     * Put the OS scenario layer (DESIGN.md §15) on the scalar data
     * path: loads and stores translate through the VM unit's DTB at
     * issue; a miss re-schedules the access after the page-table
     * walk. Null (the default) keeps translation free, bit-identical
     * to pre-VM behaviour.
     */
    void setVm(vm::VmUnit *vm) { vm_ = vm; }

    // ---- results ----------------------------------------------------
    Cycle numCycles() const { return now_; }
    std::uint64_t numRetired() const { return retired_.value(); }
    std::uint64_t numOps() const { return ops_.value(); }
    std::uint64_t numFlops() const { return flops_.value(); }
    std::uint64_t numMemops() const { return memops_.value(); }
    std::uint64_t numVecInsts() const { return vecRetired_.value(); }

    const CoreConfig &config() const { return cfg_; }
    cache::L1Cache &l1() { return l1_; }
    BranchPredictor &bpred() { return bpred_; }

    // ---- snapshot (DESIGN.md §10) -------------------------------------
    /** Stats are restored by the Processor's whole-tree pass. */
    void save(snap::Snapshotter &out) const;
    void restore(snap::Restorer &in);

  private:
    /** ROB entry state machine flags. */
    enum class Stage : std::uint8_t
    {
        Dispatched,     ///< in ROB, waiting on sources
        Ready,          ///< sources done, in an issue queue
        Issued,         ///< executing (completion scheduled or pending)
        Done            ///< finished; awaiting in-order retire
    };

    struct RobEntry
    {
        exec::DynInst di;
        Stage stage = Stage::Dispatched;
        unsigned pendingSrcs = 0;
        Cycle readyAt = 0;          ///< earliest issue (frontend depth)
        Cycle doneAt = 0;
        bool mispredicted = false;
        bool sentToVbox = false;
        std::vector<std::uint64_t> dependents;  ///< consumer seq numbers
    };

    RobEntry *entry(std::uint64_t seq);
    const RobEntry *entry(std::uint64_t seq) const;
    void saveRobEntry(snap::Snapshotter &out, const RobEntry &e) const;
    void restoreRobEntry(snap::Restorer &in, RobEntry &e) const;
    void fetchStage();
    bool fetchDrained_() const;
    void dispatchStage();
    void enqueueReady_(RobEntry &e);
    void issueStage();
    void issueFromQueue_(std::deque<std::uint64_t> &queue,
                         unsigned width);
    void completeStage();
    void retireStage();
    void drainWriteBuffer();
    void markDone(std::uint64_t seq, Cycle done_at);
    void wakeup(RobEntry &producer);
    bool issueOne(std::uint64_t seq);
    bool issueLoad(RobEntry &e);
    bool retireStoreToWb_(RobEntry &e);
    bool pushWb_(Addr line, bool wh64);

    /** Line address of @p addr with the CMP coloring bias applied. */
    Addr
    lineOf_(Addr addr) const
    {
        return roundDown(addr | addrBias_, CacheLineBytes);
    }

    CoreConfig cfg_;
    exec::Interpreter &interp_;
    cache::L2Cache &l2_;
    vbox::Vbox *vbox_;
    vm::VmUnit *vm_ = nullptr;  ///< OS scenario layer (null = off)
    unsigned coreId_ = 0;       ///< requester id on the shared L2
    std::string label_;         ///< per-core observability name
    Addr addrBias_ = 0;         ///< CMP address coloring (0 = off)
    /** CMP cross-core pending-store probe; see setPeerStoreProbe(). */
    std::function<bool(Addr)> peerStore_;
    Cycle now_ = 0;

    // Fetch state.
    std::deque<RobEntry> fetchBuffer_;  ///< fetched, not yet dispatched
    Cycle fetchResumeAt_ = 0;           ///< redirect / trap stall
    std::uint64_t redirectSeq_ = 0;     ///< branch seq fetch waits on
    bool waitingRedirect_ = false;
    bool fetchBlockedOnDrain_ = false;  ///< DrainM fetch barrier
    bool trulyHalted_ = false;

    // ROB (indexed by seq - robBaseSeq_).
    std::deque<RobEntry> rob_;
    std::uint64_t robBaseSeq_ = 0;

    // Dataflow bookkeeping.
    std::uint64_t lastWriter_[isa::NumFlatRegs];
    bool writerValid_[isa::NumFlatRegs];

    // Issue queues (seq numbers; FIFO approximates oldest-first).
    std::deque<std::uint64_t> intQueue_;
    std::deque<std::uint64_t> fpQueue_;
    std::deque<std::uint64_t> loadQueue_;
    std::deque<std::uint64_t> storeQueue_;
    std::deque<std::uint64_t> vecQueue_;

    // Completion events: doneAt -> seq.
    std::multimap<Cycle, std::uint64_t> completionEvents_;

    // L1 miss handling.
    struct L1MafEntry
    {
        std::vector<std::uint64_t> waiters;
        /** L2 invalidated the line while its fill was in flight. */
        bool invalidated = false;
    };
    std::unordered_map<Addr, L1MafEntry> l1Maf_;

    // Write buffer (line addresses; coalescing).
    struct WbEntry
    {
        Addr line = 0;
        bool wh64 = false;
    };
    std::deque<WbEntry> writeBuffer_;
    std::unordered_map<Addr, unsigned> wbLines_;   ///< line -> count
    unsigned outstandingStores_ = 0;    ///< L2 write acks pending
    /** Lines with stores dispatched but not yet drained to the L2. */
    std::unordered_map<Addr, unsigned> pendingStoreLines_;

    void
    rec(const char *what, std::uint64_t a = 0, std::uint64_t b = 0)
    {
        if (ring_)
            ring_->record(now_, what, a, b);
        if (trace_)
            trace_->instant(now_, what, a, b);
    }

    /** Trace-only event: too frequent for the forensic ring. */
    void
    trc(const char *what, std::uint64_t a = 0, std::uint64_t b = 0)
    {
        if (trace_)
            trace_->instant(now_, what, a, b);
    }

    check::FaultPlan *faults_ = nullptr;
    check::EventRing *ring_ = nullptr;
    trace::TraceChannel *trace_ = nullptr;
    bool checks_ = false;
    std::uint64_t lastRetiredPc_ = 0;

    cache::L1Cache l1_;
    BranchPredictor bpred_;

    stats::StatGroup statGroup_;
    stats::Scalar retired_;
    stats::Scalar ops_;
    stats::Scalar flops_;
    stats::Scalar memops_;
    stats::Scalar vecRetired_;
    stats::Scalar fetchStallCycles_;
    stats::Scalar robFullStalls_;
    stats::Scalar wbFullStalls_;
    stats::Scalar drainmStalls_;
    stats::Scalar staleHazards_;
};

} // namespace tarantula::ev8

#endif // TARANTULA_EV8_CORE_HH
