#include "ev8/core.hh"

#include <algorithm>
#include <cstdio>
#include <string>

#include "base/bitfield.hh"
#include "base/logging.hh"
#include "vm/vm.hh"

namespace tarantula::ev8
{

using exec::DynInst;
using isa::InstClass;
using isa::Opcode;

Core::Core(const CoreConfig &cfg, exec::Interpreter &interp,
           cache::L2Cache &l2, vbox::Vbox *vbox,
           stats::StatGroup &parent, unsigned core_id,
           const std::string &label, Addr addr_bias)
    : cfg_(cfg),
      interp_(interp),
      l2_(l2),
      vbox_(vbox),
      coreId_(core_id),
      label_(label),
      addrBias_(addr_bias),
      l1_(cfg.l1, parent),
      bpred_(cfg.bpTableBits, parent),
      statGroup_("core", &parent),
      retired_(statGroup_, "retired", "instructions retired"),
      ops_(statGroup_, "ops", "operations retired (paper's OPC basis)"),
      flops_(statGroup_, "flops", "floating-point operations retired"),
      memops_(statGroup_, "memops", "memory operations retired"),
      vecRetired_(statGroup_, "vec_retired", "vector instructions retired"),
      fetchStallCycles_(statGroup_, "fetch_stall_cycles",
                        "cycles fetch was stalled on redirect/drain"),
      robFullStalls_(statGroup_, "rob_full_stalls",
                     "dispatch stalls due to a full ROB"),
      wbFullStalls_(statGroup_, "wb_full_stalls",
                    "retire stalls due to a full write buffer"),
      drainmStalls_(statGroup_, "drainm_stalls",
                    "cycles DrainM waited for the write buffer"),
      staleHazards_(statGroup_, "stale_hazards",
                    "vector loads overlapping undrained scalar stores")
{
    for (unsigned i = 0; i < isa::NumFlatRegs; ++i)
        writerValid_[i] = false;
    // An interpreter that is born halted (empty program) has no Halt
    // instruction to retire; the core is finished from cycle zero.
    trulyHalted_ = interp_.halted();
}

Core::RobEntry *
Core::entry(std::uint64_t seq)
{
    if (seq < robBaseSeq_)
        return nullptr;     // already retired
    const std::uint64_t idx = seq - robBaseSeq_;
    if (idx >= rob_.size())
        return nullptr;
    return &rob_[idx];
}

const Core::RobEntry *
Core::entry(std::uint64_t seq) const
{
    return const_cast<Core *>(this)->entry(seq);
}

void
Core::cycle()
{
    ++now_;
    completeStage();
    issueStage();
    retireStage();
    drainWriteBuffer();
    dispatchStage();
    fetchStage();
}

Cycle
Core::nextEventCycle() const
{
    Cycle next = CycleNever;

    // Fetch pulls instructions any cycle it is eligible; while waiting
    // out a redirect penalty, the resume cycle is the next event.
    if (!interp_.halted() && !waitingRedirect_ &&
        !fetchBlockedOnDrain_ &&
        fetchBuffer_.size() < 2 * cfg_.fetchWidth) {
        if (now_ >= fetchResumeAt_)
            return now_ + 1;
        next = std::min(next, fetchResumeAt_);
    }

    // Dispatch moves fetched instructions whenever the ROB has room.
    if (!fetchBuffer_.empty() && rob_.size() < cfg_.robSize)
        return now_ + 1;

    // The write buffer retries the L2 every cycle it holds a line.
    if (!writeBuffer_.empty())
        return now_ + 1;

    // Scheduled FU / Vbox completions.
    if (!completionEvents_.empty()) {
        next = std::min(
            next, std::max(completionEvents_.begin()->first, now_ + 1));
    }

    // In-order retirement of a finished ROB head. A head whose time
    // has already come retries every cycle (a blocked store retire or
    // DrainM barrier counts a stall each attempt), so no skipping.
    if (!rob_.empty() && rob_.front().stage == Stage::Done)
        next = std::min(next, std::max(rob_.front().doneAt, now_ + 1));

    // Issue queues: an already-ready instruction retries structural
    // hazards every cycle (with L2-visible side effects); one not yet
    // past its frontend depth is a future event.
    for (const auto *queue : {&intQueue_, &fpQueue_, &loadQueue_,
                              &storeQueue_, &vecQueue_}) {
        for (const std::uint64_t seq : *queue) {
            const RobEntry *e = entry(seq);
            if (!e || e->readyAt <= now_)
                return now_ + 1;
            next = std::min(next, e->readyAt);
        }
    }
    return next;
}

void
Core::fastForward(Cycle delta)
{
    // Replay the bookkeeping of `delta` provably event-free cycles at
    // once. All pipeline state is frozen (no stage can act, by the
    // nextEventCycle() contract), so the only thing stepping would
    // have changed is the stall accounting below — mirroring exactly
    // the conditions and order of fetchStage() and dispatchStage().
    if (!(interp_.halted() && fetchDrained_())) {
        if (waitingRedirect_ || fetchBlockedOnDrain_) {
            fetchStallCycles_ += delta;
        } else if (fetchResumeAt_ > now_ + 1) {
            // Skipped cycles c in [now+1, now+delta] with c < resume.
            fetchStallCycles_ +=
                std::min(delta, fetchResumeAt_ - (now_ + 1));
        }
    }
    if (!fetchBuffer_.empty() && rob_.size() >= cfg_.robSize)
        robFullStalls_ += delta;
    now_ += delta;
}

// ---- fetch -----------------------------------------------------------

void
Core::fetchStage()
{
    if (interp_.halted() && fetchDrained_())
        return;
    if (waitingRedirect_ || fetchBlockedOnDrain_) {
        ++fetchStallCycles_;
        return;
    }
    if (now_ < fetchResumeAt_) {
        ++fetchStallCycles_;
        return;
    }
    // Keep the frontend buffer modest: two fetch groups.
    if (fetchBuffer_.size() >= 2 * cfg_.fetchWidth)
        return;
    const unsigned space = static_cast<unsigned>(
        2 * cfg_.fetchWidth - fetchBuffer_.size());
    const unsigned limit = std::min(cfg_.fetchWidth, space);

    // EV8's frontend fetches up to two branch blocks per cycle.
    unsigned taken_blocks = 0;
    for (unsigned n = 0; n < limit; ++n) {
        if (interp_.halted())
            break;
        RobEntry e;
        interp_.step(e.di);
        e.readyAt = now_ + cfg_.frontendDepth;
        const isa::Inst &in = *e.di.inst;

        bool stop = false;
        if (in.isBranch()) {
            bool mispredict;
            if (in.isCondBranch()) {
                mispredict =
                    bpred_.predictAndUpdate(e.di.pc, e.di.taken);
            } else {
                mispredict = false;     // BTB hit assumed
            }
            if (mispredict) {
                e.mispredicted = true;
                waitingRedirect_ = true;
                redirectSeq_ = e.di.seq;
                trc("branch_mispredict", e.di.pc, e.di.seq);
                stop = true;
            } else if (e.di.taken) {
                // Fetch continues into a second block; the group ends
                // at the second taken branch.
                if (++taken_blocks >= 2)
                    stop = true;
            }
        } else if (in.op == Opcode::DrainM) {
            fetchBlockedOnDrain_ = true;
            stop = true;
        } else if (in.op == Opcode::Halt) {
            stop = true;
        }

        fetchBuffer_.push_back(std::move(e));
        if (stop)
            break;
    }
}

bool
Core::fetchDrained_() const
{
    return fetchBuffer_.empty();
}

// ---- dispatch ----------------------------------------------------------

void
Core::dispatchStage()
{
    unsigned dispatched = 0;
    unsigned vec_dispatched = 0;

    while (!fetchBuffer_.empty() && dispatched < cfg_.fetchWidth) {
        if (rob_.size() >= cfg_.robSize) {
            ++robFullStalls_;
            break;
        }
        RobEntry &fe = fetchBuffer_.front();
        const bool is_vec = fe.di.inst->isVec();
        if (is_vec && vec_dispatched >= cfg_.vecDispatchWidth)
            break;      // the 3-instruction Pbox->Vbox bus is full

        rob_.push_back(std::move(fe));
        fetchBuffer_.pop_front();
        RobEntry &e = rob_.back();
        const std::uint64_t seq = e.di.seq;
        tarantula_assert(seq == robBaseSeq_ + rob_.size() - 1);

        // Dataflow: link to producers of each source register.
        isa::RegId srcs[6];
        const unsigned nsrcs = e.di.inst->srcRegs(srcs);
        for (unsigned i = 0; i < nsrcs; ++i) {
            const unsigned flat = srcs[i].flat();
            if (!writerValid_[flat])
                continue;
            RobEntry *prod = entry(lastWriter_[flat]);
            if (prod && prod->stage != Stage::Done) {
                ++e.pendingSrcs;
                prod->dependents.push_back(seq);
            }
        }
        isa::RegId dsts[2];
        const unsigned ndsts = e.di.inst->dstRegs(dsts);
        for (unsigned i = 0; i < ndsts; ++i) {
            lastWriter_[dsts[i].flat()] = seq;
            writerValid_[dsts[i].flat()] = true;
        }

        // Track unretired store lines for the staleness detector.
        if (e.di.inst->cls() == InstClass::Store)
            ++pendingStoreLines_[lineOf_(e.di.effAddr)];

        if (e.pendingSrcs == 0) {
            e.stage = Stage::Ready;
            enqueueReady_(e);
        }

        ++dispatched;
        if (is_vec)
            ++vec_dispatched;
    }
}

void
Core::enqueueReady_(RobEntry &e)
{
    const std::uint64_t seq = e.di.seq;
    if (e.di.inst->isVec()) {
        vecQueue_.push_back(seq);
        return;
    }
    switch (e.di.inst->cls()) {
      case InstClass::FpAlu:
        fpQueue_.push_back(seq);
        break;
      case InstClass::Load:
        loadQueue_.push_back(seq);
        break;
      case InstClass::Store:
        storeQueue_.push_back(seq);
        break;
      default:
        intQueue_.push_back(seq);
        break;
    }
}

// ---- issue -------------------------------------------------------------

void
Core::issueStage()
{
    issueFromQueue_(intQueue_, cfg_.intIssueWidth);
    issueFromQueue_(fpQueue_, cfg_.fpIssueWidth);
    issueFromQueue_(loadQueue_, cfg_.loadPorts);
    issueFromQueue_(storeQueue_, cfg_.storePorts);
    issueFromQueue_(vecQueue_, 4);
}

void
Core::issueFromQueue_(std::deque<std::uint64_t> &queue, unsigned width)
{
    // Oldest-first scan over a bounded issue window.
    constexpr unsigned ScanDepth = 32;
    unsigned issued = 0;
    unsigned scanned = 0;
    for (auto it = queue.begin();
         it != queue.end() && issued < width && scanned < ScanDepth;) {
        ++scanned;
        RobEntry *e = entry(*it);
        if (!e) {
            it = queue.erase(it);
            continue;
        }
        if (e->readyAt > now_) {
            ++it;
            continue;
        }
        if (issueOne(*it)) {
            ++issued;
            it = queue.erase(it);
        } else {
            ++it;       // structural hazard; retry next cycle
        }
    }
}

bool
Core::issueOne(std::uint64_t seq)
{
    RobEntry &e = *entry(seq);
    const isa::Inst &in = *e.di.inst;

    if (in.isVec()) {
        if (!vbox_)
            panic("core: vector instruction at pc %llu on a core "
                  "without a Vbox",
                  static_cast<unsigned long long>(e.di.pc));
        if (in.cls() == InstClass::VecLoad ||
            in.cls() == InstClass::VecStore) {
            if (!vbox_->issueMem(e.di, now_, seq))
                return false;   // vector memory queue full
            // Staleness detector (checked once, on acceptance): a
            // vector load overlapping a not-yet-drained scalar store
            // is the hazard the paper requires a DrainM for.
            if (in.cls() == InstClass::VecLoad &&
                (!pendingStoreLines_.empty() || !wbLines_.empty() ||
                 peerStore_)) {
                for (const auto &ea : e.di.vaddrs) {
                    const Addr line = lineOf_(ea.addr);
                    if (hasPendingStore(line) ||
                        (peerStore_ && peerStore_(line))) {
                        ++staleHazards_;
                        trc("stale_hazard", e.di.pc, ea.addr);
                        break;
                    }
                }
            }
            e.stage = Stage::Issued;
            return true;
        }
        const Cycle done = vbox_->issueArith(e.di, now_);
        e.stage = Stage::Issued;
        completionEvents_.emplace(done, seq);
        return true;
    }

    unsigned latency = cfg_.intLatency;
    switch (in.cls()) {
      case InstClass::IntAlu:
        latency = in.op == Opcode::Mulq ? cfg_.mulLatency
                                        : cfg_.intLatency;
        break;
      case InstClass::FpAlu:
        if (in.op == Opcode::Divt)
            latency = cfg_.divLatency;
        else if (in.op == Opcode::Sqrtt)
            latency = cfg_.sqrtLatency;
        else
            latency = cfg_.fpLatency;
        break;
      case InstClass::Branch:
        latency = cfg_.intLatency;
        break;
      case InstClass::Load:
        return issueLoad(e);
      case InstClass::Store:
        // The AGU consults the DTB at issue; a VM-layer miss walks
        // the page table and the store re-issues afterwards.
        if (vm_) {
            const Cycle stall =
                vm_->scalarTranslate(e.di.effAddr | addrBias_, now_);
            if (stall) {
                e.readyAt = now_ + stall;
                return false;
            }
        }
        // Data and address are ready; the actual write happens from
        // the write buffer after retirement (write-through).
        latency = 1;
        break;
      case InstClass::Misc:
        if (in.op == Opcode::Prefetch) {
            // Non-binding: start an L1 fill if the line is absent and
            // an L1 MAF entry is free; never stalls.
            const Addr line = lineOf_(e.di.effAddr);
            if (!l1_.lookup(line) && !l1Maf_.count(line) &&
                l1Maf_.size() < cfg_.l1MafEntries &&
                l2_.scalarRequest(line, false, 0, false, coreId_)) {
                l1Maf_[line];   // no waiters; fill on response
            }
        }
        latency = 1;
        break;
      default:
        latency = 1;
        break;
    }

    e.stage = Stage::Issued;
    completionEvents_.emplace(now_ + latency, seq);
    return true;
}

bool
Core::issueLoad(RobEntry &e)
{
    // The AGU consults the DTB first; a VM-layer miss walks the page
    // table (real memory traffic) and the load re-issues once the
    // translation is installed.
    if (vm_) {
        const Cycle stall =
            vm_->scalarTranslate(e.di.effAddr | addrBias_, now_);
        if (stall) {
            e.readyAt = now_ + stall;
            return false;
        }
    }
    const Addr line = lineOf_(e.di.effAddr);
    if (l1_.lookup(line)) {
        e.stage = Stage::Issued;
        completionEvents_.emplace(now_ + cfg_.l1HitLatency, e.di.seq);
        return true;
    }
    auto it = l1Maf_.find(line);
    if (it != l1Maf_.end()) {
        it->second.waiters.push_back(e.di.seq);
        e.stage = Stage::Issued;
        return true;
    }
    if (l1Maf_.size() >= cfg_.l1MafEntries)
        return false;   // all miss registers busy
    if (!l2_.scalarRequest(line, false, 0, false, coreId_))
        return false;   // L2 MAF full or panicking
    l1Maf_[line].waiters.push_back(e.di.seq);
    e.stage = Stage::Issued;
    trc("l1_miss", line, e.di.pc);
    return true;
}

// ---- completion ----------------------------------------------------------

void
Core::completeStage()
{
    // Scheduled FU completions.
    while (!completionEvents_.empty() &&
           completionEvents_.begin()->first <= now_) {
        auto [at, seq] = *completionEvents_.begin();
        completionEvents_.erase(completionEvents_.begin());
        markDone(seq, at);
    }

    // Scalar L2 responses: fills wake loads; write acks retire stores.
    while (auto resp = l2_.dequeueScalarResp(coreId_)) {
        if (resp->isWrite) {
            tarantula_assert(outstandingStores_ > 0);
            --outstandingStores_;
            continue;
        }
        auto it = l1Maf_.find(resp->lineAddr);
        // A fill whose line the L2 invalidated in transit must not
        // install: the L2 no longer tracks a processor-held copy, so
        // installing would leave a stale L1 line (coherency.pbit).
        // The waiting loads still complete -- the data was read while
        // the line was resident.
        const bool poisoned = it != l1Maf_.end() &&
                              it->second.invalidated;
        if (!poisoned)
            l1_.fill(resp->lineAddr);
        if (it != l1Maf_.end()) {
            for (std::uint64_t seq : it->second.waiters)
                markDone(seq, now_ + 1);
            l1Maf_.erase(it);
        }
    }

    // VCU completions from the Vbox.
    if (vbox_) {
        while (auto c = vbox_->dequeueCompletion())
            markDone(c->robTag, std::max(c->doneAt, now_));
    }
}

void
Core::markDone(std::uint64_t seq, Cycle done_at)
{
    RobEntry *e = entry(seq);
    if (!e)
        panic("core: markDone: instruction %llu already retired",
              static_cast<unsigned long long>(seq));
    tarantula_assert(e->stage != Stage::Done);
    e->stage = Stage::Done;
    e->doneAt = done_at;

    if (e->mispredicted) {
        // The branch resolved; redirect fetch after the penalty.
        waitingRedirect_ = false;
        fetchResumeAt_ =
            std::max(fetchResumeAt_, done_at + cfg_.mispredictPenalty);
    }

    wakeup(*e);
}

void
Core::wakeup(RobEntry &producer)
{
    for (std::uint64_t dep_seq : producer.dependents) {
        RobEntry *dep = entry(dep_seq);
        if (!dep)
            continue;
        tarantula_assert(dep->pendingSrcs > 0);
        if (--dep->pendingSrcs == 0 &&
            dep->stage == Stage::Dispatched) {
            dep->stage = Stage::Ready;
            enqueueReady_(*dep);
        }
    }
    producer.dependents.clear();
}

// ---- retire ------------------------------------------------------------

void
Core::retireStage()
{
    unsigned retired_now = 0;
    for (unsigned n = 0; n < cfg_.retireWidth && !rob_.empty(); ++n) {
        RobEntry &e = rob_.front();
        if (e.stage != Stage::Done || e.doneAt > now_)
            break;
        const isa::Inst &in = *e.di.inst;

        if (in.cls() == InstClass::Store) {
            if (!retireStoreToWb_(e))
                break;      // write buffer full
        } else if (in.op == Opcode::Wh64) {
            if (!pushWb_(lineOf_(e.di.effAddr), true))
                break;
        } else if (in.op == Opcode::DrainM) {
            // Fault injection: the barrier "forgets" to wait for the
            // write-buffer purge. The inline check below must refuse
            // to let the broken barrier retire.
            const bool skip_wait =
                faults_ &&
                faults_->fire(check::Fault::DrainSkip, now_);
            if (skip_wait) {
                rec("drain_skip",
                    static_cast<std::uint64_t>(writeBuffer_.size()),
                    outstandingStores_);
            } else if (!writeBuffer_.empty() ||
                       outstandingStores_ > 0) {
                ++drainmStalls_;
                trc("drainm_stall",
                    static_cast<std::uint64_t>(writeBuffer_.size()),
                    outstandingStores_);
                break;      // purge still in progress
            }
            // The DrainM contract: nothing the barrier was ordered
            // against may still be in flight when it retires.
            if (checks_ &&
                (!writeBuffer_.empty() || outstandingStores_ > 0)) {
                const std::string chk =
                    label_ == "core" ? "coherency.drainm"
                                     : label_ + ".coherency.drainm";
                check::CheckerRegistry::fail(
                    chk.c_str(), now_,
                    "DrainM retiring with " +
                        std::to_string(writeBuffer_.size()) +
                        " write-buffer lines and " +
                        std::to_string(outstandingStores_) +
                        " store acks outstanding");
            }
            // Purge complete: retire and take the replay trap.
            fetchBlockedOnDrain_ = false;
            fetchResumeAt_ = std::max(fetchResumeAt_,
                                      now_ + cfg_.mispredictPenalty);
        } else if (in.op == Opcode::Halt) {
            trulyHalted_ = true;
        }

        lastRetiredPc_ = e.di.pc;
        ++retired_;
        ++retired_now;
        ops_ += e.di.ops();
        flops_ += e.di.flops();
        memops_ += e.di.memops();
        if (in.isVec())
            ++vecRetired_;

        rob_.pop_front();
        ++robBaseSeq_;
    }
    if (retired_now > 0)
        trc("retire", retired_now, lastRetiredPc_);
}

bool
Core::retireStoreToWb_(RobEntry &e)
{
    const Addr line = lineOf_(e.di.effAddr);
    if (!pushWb_(line, false))
        return false;
    auto it = pendingStoreLines_.find(line);
    tarantula_assert(it != pendingStoreLines_.end());
    if (--it->second == 0)
        pendingStoreLines_.erase(it);
    return true;
}

bool
Core::pushWb_(Addr line, bool wh64)
{
    auto it = wbLines_.find(line);
    if (it != wbLines_.end()) {
        // Write-combining: merge into the existing entry.
        for (auto &wb : writeBuffer_) {
            if (wb.line == line) {
                wb.wh64 = wb.wh64 || wh64;
                break;
            }
        }
        return true;
    }
    if (writeBuffer_.size() >= cfg_.writeBufferEntries) {
        ++wbFullStalls_;
        trc("wb_full", line);
        return false;
    }
    writeBuffer_.push_back({line, wh64});
    wbLines_.emplace(line, 1);
    return true;
}

void
Core::drainWriteBuffer()
{
    unsigned drained = 0;
    while (!writeBuffer_.empty() && drained < cfg_.storePorts) {
        const WbEntry wb = writeBuffer_.front();
        if (!l2_.scalarRequest(wb.line, true, 0, wb.wh64, coreId_))
            break;      // L2 busy; retry next cycle
        // Write-through: keep the L1 copy coherent if present.
        ++outstandingStores_;
        writeBuffer_.pop_front();
        wbLines_.erase(wb.line);
        ++drained;
    }
}

// ---- coherency and integrity ------------------------------------------

void
Core::l1Invalidate(Addr line_addr)
{
    l1_.invalidate(line_addr);
    auto it = l1Maf_.find(line_addr);
    if (it != l1Maf_.end())
        it->second.invalidated = true;
    rec("l1_invalidate", line_addr);
}

void
Core::attachIntegrity(check::Integrity &kit)
{
    faults_ = kit.faults();
    ring_ = kit.ring(label_);
    checks_ = kit.checksEnabled();

    kit.registry().add(
        label_ == "core" ? "coherency.pbit"
                         : label_ + ".coherency.pbit",
        [this](Cycle, std::vector<std::string> &v) {
            // The P-bit protocol's promise: the L2 knows about every
            // line the processor holds. A valid L1 line must be
            // resident in the L2 with its P-bit set; a lost
            // invalidate breaks one or both.
            l1_.forEachLine([&](Addr line) {
                char buf[80];
                if (!l2_.probe(line)) {
                    std::snprintf(buf, sizeof(buf),
                                  "L1 holds line 0x%llx absent from "
                                  "the L2",
                                  static_cast<unsigned long long>(
                                      line));
                    v.push_back(buf);
                } else if (!l2_.probePBit(line)) {
                    std::snprintf(buf, sizeof(buf),
                                  "L1 holds line 0x%llx whose L2 "
                                  "P-bit is clear",
                                  static_cast<unsigned long long>(
                                      line));
                    v.push_back(buf);
                }
            });
        });

    kit.forensics().addProbe(label_, [this](JsonWriter &w) {
        w.key("cycle").value(static_cast<std::uint64_t>(now_));
        w.key("lastRetiredPc").value(lastRetiredPc_);
        w.key("retired").value(retired_.value());
        w.key("robOccupancy")
            .value(static_cast<std::uint64_t>(rob_.size()));
        w.key("fetchBufferDepth")
            .value(static_cast<std::uint64_t>(fetchBuffer_.size()));
        w.key("writeBufferDepth")
            .value(static_cast<std::uint64_t>(writeBuffer_.size()));
        w.key("outstandingStores").value(outstandingStores_);
        w.key("l1MafOccupancy")
            .value(static_cast<std::uint64_t>(l1Maf_.size()));
        w.key("completionEventsPending")
            .value(static_cast<std::uint64_t>(
                completionEvents_.size()));
        w.key("waitingRedirect").value(waitingRedirect_);
        w.key("fetchBlockedOnDrain").value(fetchBlockedOnDrain_);
        w.key("trulyHalted").value(trulyHalted_);
    });
}

void
Core::attachTrace(trace::TraceSink &sink)
{
    trace_ = &sink.channel(label_);
}

// ---- queries ---------------------------------------------------------

bool
Core::hasPendingStore(Addr line_addr) const
{
    return wbLines_.count(line_addr) > 0 ||
           pendingStoreLines_.count(line_addr) > 0;
}

bool
Core::done() const
{
    return trulyHalted_ && rob_.empty() && fetchBuffer_.empty() &&
           writeBuffer_.empty() && outstandingStores_ == 0 &&
           completionEvents_.empty() && l1Maf_.empty() &&
           (!vbox_ || vbox_->idle());
}

// ---- snapshot (DESIGN.md §10) ----------------------------------------

namespace
{

void
saveSeqQueue(snap::Snapshotter &out,
             const std::deque<std::uint64_t> &queue)
{
    out.u64(queue.size());
    for (std::uint64_t seq : queue)
        out.u64(seq);
}

void
restoreSeqQueue(snap::Restorer &in, std::deque<std::uint64_t> &queue)
{
    queue.resize(in.u64());
    for (auto &seq : queue)
        seq = in.u64();
}

} // anonymous namespace

void
Core::saveRobEntry(snap::Snapshotter &out, const RobEntry &e) const
{
    e.di.save(out);
    out.u8(static_cast<std::uint8_t>(e.stage));
    out.u32(e.pendingSrcs);
    out.u64(e.readyAt);
    out.u64(e.doneAt);
    out.b(e.mispredicted);
    out.b(e.sentToVbox);
    out.u64(e.dependents.size());
    for (std::uint64_t dep : e.dependents)
        out.u64(dep);
}

void
Core::restoreRobEntry(snap::Restorer &in, RobEntry &e) const
{
    e.di.restore(in, interp_.program());
    e.stage = static_cast<Stage>(in.u8());
    e.pendingSrcs = in.u32();
    e.readyAt = in.u64();
    e.doneAt = in.u64();
    e.mispredicted = in.b();
    e.sentToVbox = in.b();
    e.dependents.resize(in.u64());
    for (auto &dep : e.dependents)
        dep = in.u64();
}

void
Core::save(snap::Snapshotter &out) const
{
    out.section(label_);
    out.u64(now_);

    // Fetch state.
    out.u64(fetchBuffer_.size());
    for (const auto &e : fetchBuffer_)
        saveRobEntry(out, e);
    out.u64(fetchResumeAt_);
    out.u64(redirectSeq_);
    out.b(waitingRedirect_);
    out.b(fetchBlockedOnDrain_);
    out.b(trulyHalted_);

    // ROB.
    out.u64(rob_.size());
    for (const auto &e : rob_)
        saveRobEntry(out, e);
    out.u64(robBaseSeq_);

    // Dataflow bookkeeping.
    for (unsigned r = 0; r < isa::NumFlatRegs; ++r) {
        out.u64(lastWriter_[r]);
        out.b(writerValid_[r]);
    }

    // Issue queues and completion events.
    saveSeqQueue(out, intQueue_);
    saveSeqQueue(out, fpQueue_);
    saveSeqQueue(out, loadQueue_);
    saveSeqQueue(out, storeQueue_);
    saveSeqQueue(out, vecQueue_);
    out.u64(completionEvents_.size());
    for (const auto &[cycle, seq] : completionEvents_) {
        out.u64(cycle);
        out.u64(seq);
    }

    // L1 MAF; sorted by line so the payload is byte-deterministic
    // (the map is only probed/erased by key on the simulation path).
    {
        std::vector<Addr> lines;
        lines.reserve(l1Maf_.size());
        for (const auto &[line, entry] : l1Maf_)
            lines.push_back(line);
        std::sort(lines.begin(), lines.end());
        out.u64(lines.size());
        for (Addr line : lines) {
            const L1MafEntry &e = l1Maf_.at(line);
            out.u64(line);
            out.b(e.invalidated);
            out.u64(e.waiters.size());
            for (std::uint64_t w : e.waiters)
                out.u64(w);
        }
    }

    // Write buffer and store tracking (wbLines_ / pendingStoreLines_
    // likewise sorted for determinism).
    out.u64(writeBuffer_.size());
    for (const auto &wb : writeBuffer_) {
        out.u64(wb.line);
        out.b(wb.wh64);
    }
    auto saveAddrCounts =
        [&out](const std::unordered_map<Addr, unsigned> &map) {
            std::vector<std::pair<Addr, unsigned>> sorted(map.begin(),
                                                          map.end());
            std::sort(sorted.begin(), sorted.end());
            out.u64(sorted.size());
            for (const auto &[line, count] : sorted) {
                out.u64(line);
                out.u32(count);
            }
        };
    saveAddrCounts(wbLines_);
    out.u32(outstandingStores_);
    saveAddrCounts(pendingStoreLines_);

    out.u64(lastRetiredPc_);
    l1_.save(out);
    bpred_.save(out);
}

void
Core::restore(snap::Restorer &in)
{
    in.section(label_);
    now_ = in.u64();

    fetchBuffer_.resize(in.u64());
    for (auto &e : fetchBuffer_)
        restoreRobEntry(in, e);
    fetchResumeAt_ = in.u64();
    redirectSeq_ = in.u64();
    waitingRedirect_ = in.b();
    fetchBlockedOnDrain_ = in.b();
    trulyHalted_ = in.b();

    rob_.resize(in.u64());
    for (auto &e : rob_)
        restoreRobEntry(in, e);
    robBaseSeq_ = in.u64();

    for (unsigned r = 0; r < isa::NumFlatRegs; ++r) {
        lastWriter_[r] = in.u64();
        writerValid_[r] = in.b();
    }

    restoreSeqQueue(in, intQueue_);
    restoreSeqQueue(in, fpQueue_);
    restoreSeqQueue(in, loadQueue_);
    restoreSeqQueue(in, storeQueue_);
    restoreSeqQueue(in, vecQueue_);
    completionEvents_.clear();
    const std::uint64_t numEvents = in.u64();
    for (std::uint64_t i = 0; i < numEvents; ++i) {
        const Cycle cycle = in.u64();
        const std::uint64_t seq = in.u64();
        completionEvents_.emplace(cycle, seq);
    }

    l1Maf_.clear();
    const std::uint64_t numMaf = in.u64();
    for (std::uint64_t i = 0; i < numMaf; ++i) {
        const Addr line = in.u64();
        L1MafEntry &e = l1Maf_[line];
        e.invalidated = in.b();
        e.waiters.resize(in.u64());
        for (auto &w : e.waiters)
            w = in.u64();
    }

    writeBuffer_.resize(in.u64());
    for (auto &wb : writeBuffer_) {
        wb.line = in.u64();
        wb.wh64 = in.b();
    }
    auto restoreAddrCounts =
        [&in](std::unordered_map<Addr, unsigned> &map) {
            map.clear();
            const std::uint64_t count = in.u64();
            for (std::uint64_t i = 0; i < count; ++i) {
                const Addr line = in.u64();
                map[line] = in.u32();
            }
        };
    restoreAddrCounts(wbLines_);
    outstandingStores_ = in.u32();
    restoreAddrCounts(pendingStoreLines_);

    lastRetiredPc_ = in.u64();
    l1_.restore(in);
    bpred_.restore(in);
}

} // namespace tarantula::ev8
