/**
 * @file
 * A gshare conditional-branch predictor.
 *
 * EV8's real predictor was a large hybrid; a sizeable gshare is enough
 * to reproduce the relevant behaviour (loop branches predict well, the
 * data-dependent branches that vector masks eliminate in moldyn do
 * not). Unconditional branches always predict taken; targets are
 * considered BTB hits (the trace knows them).
 */

#ifndef TARANTULA_EV8_BRANCH_PREDICTOR_HH
#define TARANTULA_EV8_BRANCH_PREDICTOR_HH

#include <cstdint>
#include <vector>

#include "base/statistics.hh"
#include "snap/snapshot.hh"

namespace tarantula::ev8
{

/** Global-history two-bit-counter predictor. */
class BranchPredictor
{
  public:
    BranchPredictor(unsigned table_bits, stats::StatGroup &parent)
        : tableBits_(table_bits),
          table_(std::size_t(1) << table_bits, 2),
          statGroup_("bpred", &parent),
          lookups_(statGroup_, "lookups", "conditional branches seen"),
          mispredicts_(statGroup_, "mispredicts",
                       "conditional branches mispredicted")
    {
    }

    /**
     * Predict, update with the actual outcome, and report whether the
     * prediction was wrong.
     *
     * @param pc     Instruction index of the branch.
     * @param taken  Architectural outcome from the trace.
     * @return true when the prediction missed (redirect needed).
     */
    bool
    predictAndUpdate(std::uint32_t pc, bool taken)
    {
        ++lookups_;
        const std::size_t idx =
            (pc ^ history_) & ((std::size_t(1) << tableBits_) - 1);
        const bool predicted = table_[idx] >= 2;

        if (taken) {
            if (table_[idx] < 3)
                ++table_[idx];
        } else {
            if (table_[idx] > 0)
                --table_[idx];
        }
        history_ = ((history_ << 1) | (taken ? 1u : 0u)) &
                   ((1u << tableBits_) - 1);

        if (predicted != taken) {
            ++mispredicts_;
            return true;
        }
        return false;
    }

    std::uint64_t numMispredicts() const { return mispredicts_.value(); }
    std::uint64_t numLookups() const { return lookups_.value(); }

    // ---- snapshot (DESIGN.md §10) -------------------------------------
    /** Stats are restored by the Processor's whole-tree pass. */
    void
    save(snap::Snapshotter &out) const
    {
        out.section("bpred");
        out.u32(history_);
        out.u64(table_.size());
        for (auto counter : table_)
            out.u8(counter);
    }

    void
    restore(snap::Restorer &in)
    {
        in.section("bpred");
        history_ = in.u32();
        const std::uint64_t size = in.u64();
        if (size != table_.size()) {
            throw snap::SnapshotError(
                "snapshot: branch predictor table size mismatch");
        }
        for (auto &counter : table_)
            counter = in.u8();
    }

  private:
    unsigned tableBits_;
    std::uint32_t history_ = 0;
    std::vector<std::uint8_t> table_;
    stats::StatGroup statGroup_;
    stats::Scalar lookups_;
    stats::Scalar mispredicts_;
};

} // namespace tarantula::ev8

#endif // TARANTULA_EV8_BRANCH_PREDICTOR_HH
