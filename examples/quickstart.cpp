/**
 * @file
 * Quickstart: write a vectorized DAXPY with the Assembler DSL, run it
 * on the Tarantula machine model, check the result against plain C++,
 * and print the performance counters.
 *
 *   ./build/examples/quickstart
 */

#include <cstdio>
#include <sstream>
#include <vector>

#include "exec/memory.hh"
#include "proc/machine_config.hh"
#include "proc/processor.hh"
#include "program/assembler.hh"

using namespace tarantula;
using namespace tarantula::program;

int
main()
{
    // ---- 1. Build the input data set -------------------------------
    const unsigned n = 16 * 1024;
    const double alpha = 2.5;
    const Addr x_base = 0x100000;
    const Addr y_base = 0x200000;

    exec::FunctionalMemory mem;
    std::vector<double> x(n), y(n);
    for (unsigned i = 0; i < n; ++i) {
        x[i] = 0.01 * i;
        y[i] = 1.0;
    }
    mem.write(x_base, x.data(), n * sizeof(double));
    mem.write(y_base, y.data(), n * sizeof(double));

    // ---- 2. Hand-vectorize y += alpha * x ---------------------------
    Assembler as;
    Label loop = as.newLabel();
    as.movi(R(1), static_cast<std::int64_t>(x_base));
    as.movi(R(2), static_cast<std::int64_t>(y_base));
    as.movi(R(3), n);
    as.fconst(F(1), alpha, R(9));
    as.setvl(128);      // 128 elements per vector instruction
    as.setvs(8);        // unit stride (8-byte doubles)
    as.bind(loop);
    as.vldt(V(0), R(1));                // x chunk
    as.vldt(V(1), R(2));                // y chunk
    as.vmult(V(2), V(0), F(1));         // alpha * x
    as.vaddt(V(1), V(1), V(2));         // y + alpha*x
    as.vstt(V(1), R(2));
    as.addq(R(1), R(1), 128 * 8);
    as.addq(R(2), R(2), 128 * 8);
    as.subq(R(3), R(3), 128);
    as.bgt(R(3), loop);
    as.halt();
    Program prog = as.finalize();

    std::printf("Program (%zu instructions):\n%s\n", prog.size(),
                prog.disasm().c_str());

    // ---- 3. Run it on the Tarantula machine model --------------------
    proc::Processor cpu(proc::tarantulaConfig(), prog, mem);
    const proc::RunResult r = cpu.run();

    // ---- 4. Check the result -----------------------------------------
    unsigned errors = 0;
    for (unsigned i = 0; i < n; ++i) {
        const double expect = 1.0 + alpha * (0.01 * i);
        if (mem.readT(y_base + i * 8) != expect)
            ++errors;
    }

    std::printf("cycles:            %llu\n",
                static_cast<unsigned long long>(r.cycles));
    std::printf("instructions:      %llu\n",
                static_cast<unsigned long long>(r.insts));
    std::printf("operations/cycle:  %.2f\n", r.opc());
    std::printf("flops/cycle:       %.2f\n", r.fpc());
    std::printf("memops/cycle:      %.2f\n", r.mpc());
    std::printf("result:            %s\n",
                errors == 0 ? "correct" : "WRONG");

    // ---- 5. Full statistics tree --------------------------------------
    std::ostringstream stats;
    cpu.stats().report(stats);
    std::printf("\nSelected statistics:\n");
    std::istringstream lines(stats.str());
    std::string line;
    while (std::getline(lines, line)) {
        if (line.find("::") == std::string::npos &&
            (line.find("vbox.") != std::string::npos ||
             line.find("l2.slices") != std::string::npos)) {
            std::printf("  %s\n", line.c_str());
        }
    }
    return errors == 0 ? 0 : 1;
}
