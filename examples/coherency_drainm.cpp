/**
 * @file
 * Scalar-vector coherency walkthrough (paper section 3.4): the P-bit
 * protocol keeps the L1 and the vector unit consistent automatically
 * -- except for one case, a scalar store still sitting in the write
 * buffer when a younger vector load reads the same line. The paper
 * requires the programmer to insert a DrainM barrier there. This
 * example triggers the hazard, shows the detector flagging it, and
 * then fixes it with DrainM.
 *
 *   ./build/examples/coherency_drainm
 */

#include <cstdio>
#include <sstream>

#include "exec/memory.hh"
#include "proc/machine_config.hh"
#include "proc/processor.hh"
#include "program/assembler.hh"

using namespace tarantula;
using namespace tarantula::program;

namespace
{

std::uint64_t
statValue(proc::Processor &p, const std::string &key)
{
    std::ostringstream os;
    p.stats().report(os);
    const std::string text = os.str();
    const auto pos = text.find(key + " ");
    if (pos == std::string::npos)
        return 0;
    return std::strtoull(text.c_str() + pos + key.size() + 1, nullptr,
                         10);
}

proc::RunResult
runCase(bool with_drainm, std::uint64_t &hazards,
        std::uint64_t &invalidates)
{
    Assembler a;
    a.movi(R(1), 0x100000);
    a.movi(R(2), 1234);
    // Scalar stores: they sit in the store queue / write buffer on
    // their way to the L2.
    for (unsigned i = 0; i < 4; ++i)
        a.stq(R(2), i * 8, R(1));
    if (with_drainm)
        a.drainm();     // purge the write buffer, replay trap
    // Younger vector load of the same lines.
    a.setvl(128);
    a.setvs(8);
    a.vldq(V(1), R(1));
    a.halt();
    Program p = a.finalize();

    exec::FunctionalMemory mem;
    proc::Processor cpu(proc::tarantulaConfig(), p, mem);
    const auto r = cpu.run();
    hazards = statValue(cpu, "stale_hazards");
    invalidates = statValue(cpu, "l1_invalidates");
    return r;
}

} // anonymous namespace

int
main()
{
    std::uint64_t hazards = 0, invalidates = 0;

    std::printf("case 1: scalar stores -> vector load, NO DrainM\n");
    auto r1 = runCase(false, hazards, invalidates);
    std::printf("  cycles: %llu, staleness hazards flagged: %llu\n",
                static_cast<unsigned long long>(r1.cycles),
                static_cast<unsigned long long>(hazards));
    std::printf("  (on real hardware the vector load could read stale "
                "data here)\n\n");
    const bool flagged = hazards > 0;

    std::printf("case 2: the same code WITH DrainM\n");
    auto r2 = runCase(true, hazards, invalidates);
    std::printf("  cycles: %llu, staleness hazards flagged: %llu, "
                "L1 invalidates: %llu\n",
                static_cast<unsigned long long>(r2.cycles),
                static_cast<unsigned long long>(hazards),
                static_cast<unsigned long long>(invalidates));
    std::printf("  (the barrier drained the write buffer; the P-bit "
                "then synchronized the L1;\n"
                "   the replay trap and purge cost %lld extra "
                "cycles)\n",
                static_cast<long long>(r2.cycles) -
                    static_cast<long long>(r1.cycles));

    const bool clean = hazards == 0;
    std::printf("\n%s\n", flagged && clean
                              ? "protocol demonstrated correctly"
                              : "UNEXPECTED BEHAVIOUR");
    return flagged && clean ? 0 : 1;
}
