/**
 * @file
 * Gather/scatter walkthrough: a sparse matrix-vector product with the
 * masked-reduction idiom, showing how the CR box packs random
 * addresses into conflict-free slices and what that costs relative to
 * dense access.
 *
 *   ./build/examples/sparse_gather
 */

#include <cstdio>
#include <vector>

#include "base/random.hh"
#include "exec/dyn_inst.hh"
#include "exec/memory.hh"
#include "proc/machine_config.hh"
#include "proc/processor.hh"
#include "program/assembler.hh"
#include "vbox/slicer.hh"
#include "workloads/workload.hh"

using namespace tarantula;
using namespace tarantula::program;

namespace
{

/** Show the CR-box tournament on one random address set. */
void
demoSlicePlans()
{
    Random rng(1);
    std::vector<exec::VecElemAddr> addrs;
    for (unsigned i = 0; i < 128; ++i) {
        addrs.push_back({static_cast<std::uint16_t>(i),
                         rng.below(1 << 16) * 8});
    }
    vbox::Slicer slicer;

    auto gather = slicer.plan(addrs, false, false, 0, 1);
    std::printf("random gather of 128 elements:\n");
    std::printf("  scheme: CR box, %zu slices, %u tournament rounds "
                "(%.1f addresses packed per round)\n",
                gather.slices.size(), gather.addrGenCycles,
                128.0 / gather.addrGenCycles);

    std::vector<exec::VecElemAddr> unit;
    for (unsigned i = 0; i < 128; ++i)
        unit.push_back({static_cast<std::uint16_t>(i),
                        0x1000 + Addr(i) * 8});
    auto pump = slicer.plan(unit, false, true, 8, 2);
    std::printf("stride-1 load of 128 elements:\n");
    std::printf("  scheme: pump, %zu slice(s), %u address-generation "
                "cycle(s)\n\n",
                pump.slices.size(), pump.addrGenCycles);
}

} // anonymous namespace

int
main()
{
    demoSlicePlans();

    // Run the full sparse matrix-vector workload and report.
    std::printf("running the sparsemxv workload on Tarantula...\n");
    workloads::Workload w = workloads::byName("sparsemxv");
    exec::FunctionalMemory mem;
    w.init(mem);
    proc::Processor cpu(proc::tarantulaConfig(), w.vectorProg, mem);
    const auto r = cpu.run();
    const std::string err = w.check(mem);

    std::printf("  result: %s\n",
                err.empty() ? "correct" : err.c_str());
    std::printf("  cycles: %llu, ops/cycle: %.2f (flops %.2f, mem "
                "%.2f)\n",
                static_cast<unsigned long long>(r.cycles), r.opc(),
                r.fpc(), r.mpc());
    std::printf("  slices issued: %llu, addr-gen busy cycles: %llu\n",
                static_cast<unsigned long long>(
                    cpu.vbox()->slicesIssued()),
                static_cast<unsigned long long>(
                    cpu.vbox()->addrGenBusy()));
    std::printf("\nThe paper's point: gather-bound codes sustain far "
                "fewer operations per\n"
                "cycle than dense ones, yet a handful of gather "
                "instructions keeps the\n"
                "whole memory system busy where a superscalar would "
                "stall after its\n"
                "miss buffers fill.\n");
    return err.empty() ? 0 : 1;
}
