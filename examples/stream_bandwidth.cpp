/**
 * @file
 * Memory-bandwidth exploration: sweeps vector strides on the
 * Tarantula machine and shows the three address-generation regimes --
 * pump-mode stride 1, conflict-free reordered odd strides, and
 * self-conflicting strides through the CR box -- exactly the
 * trade-off the paper's L2 design is built around.
 *
 *   ./build/examples/stream_bandwidth
 */

#include <cstdio>

#include "exec/memory.hh"
#include "proc/machine_config.hh"
#include "proc/processor.hh"
#include "program/assembler.hh"
#include "vbox/slicer.hh"

using namespace tarantula;
using namespace tarantula::program;

namespace
{

double
warmStrideQwPerCycle(std::int64_t stride_qw)
{
    // Difference a 6-pass run against a 2-pass run: the delta is
    // four steady-state L2-warm passes (the cold pass and the pipe
    // fill shadow the first warm pass, so 1-vs-2 differencing would
    // under-count).
    const unsigned iters = 64;
    Cycle cycles[2];
    for (int passes = 2; passes <= 6; passes += 4) {
        Assembler a;
        Label rep = a.newLabel();
        a.movi(R(5), passes);
        a.setvl(128);
        a.setvs(stride_qw * 8);
        a.bind(rep);
        Label loop = a.newLabel();
        a.movi(R(1), 0x1000000);
        a.movi(R(3), iters);
        a.bind(loop);
        a.vldq(V(0), R(1));
        a.addq(R(1), R(1),
               static_cast<std::int64_t>(128 * stride_qw * 8));
        a.subq(R(3), R(3), 1);
        a.bgt(R(3), loop);
        a.subq(R(5), R(5), 1);
        a.bgt(R(5), rep);
        a.halt();
        Program p = a.finalize();
        exec::FunctionalMemory mem;
        proc::Processor cpu(proc::tarantulaConfig(), p, mem);
        cycles[passes == 2 ? 0 : 1] = cpu.run().cycles;
    }
    return 4.0 * 128.0 * iters /
           static_cast<double>(cycles[1] - cycles[0]);
}

} // anonymous namespace

int
main()
{
    std::printf("Vector load bandwidth from a warm L2 by stride\n");
    std::printf("(paper: 32 qw/cycle stride-1 with the PUMP, 16 "
                "qw/cycle reordered\n");
    std::printf(" non-unit strides, CR-box throughput for "
                "self-conflicting ones)\n\n");
    std::printf("%10s %12s %14s\n", "stride(qw)", "qw/cycle",
                "regime");

    for (std::int64_t s : {1, 2, 3, 4, 5, 7, 8, 16, 31, 32, 64, 128}) {
        const double bw = warmStrideQwPerCycle(s);
        const char *regime;
        if (s == 1)
            regime = "pump";
        else if (!vbox::Slicer::selfConflicting(s * 8))
            regime = "reorder";
        else
            regime = "CR box";
        std::printf("%10lld %12.1f %14s\n",
                    static_cast<long long>(s), bw, regime);
    }
    return 0;
}
