/**
 * @file
 * Batch sweep driver: run a machine x workload x knob grid through
 * SimFarm's worker pool and export every result as JSON.
 *
 *   tarantula_batch [--machines EV8,T,...|all] [--workloads all|micro|
 *                   figure|rivec|NAME,...] [--cores LIST] [--jobs N]
 *                   [--json FILE] [--no-pump] [--force-crbox]
 *                   [--max-cycles N] [--faults SPEC] [--trace-dir DIR]
 *                   [--sample-every N] [--sample-stats PREFIXES]
 *                   [--quiet] [--list] [--manifest DIR]
 *                   [--warm-from FILE] [--workers N]
 *
 * --cores adds a CMP dimension to the grid (machine x workload x
 * cores). A workload entry may itself be a '+'-joined per-core
 * placement list -- "copy+dgemm" runs copy on even cores and dgemm on
 * odd ones (DESIGN.md §11). Placement entries are skipped at the
 * grid's 1-core points (they have no single-core meaning) and are a
 * spec error when no --cores entry exceeds 1.
 *
 * One invocation reproduces the Figure 6/7 grids: e.g.
 *   tarantula_batch --machines EV8,EV8+,T --workloads figure --jobs 8
 * Progress goes to stderr; the JSON batch report goes to stdout or to
 * the --json file, so the tool composes with shell pipelines.
 *
 * --manifest makes the batch crash-resumable: each completed job's
 * record is stored in DIR as it finishes, a rerun of the same sweep
 * skips stored jobs, and the final report is byte-identical to an
 * uninterrupted run's (host-timing fields are zeroed in this mode).
 * --warm-from fans one tarantula.snapshot.v1 checkpoint across every
 * grid point matching its machine and workload (DESIGN.md §10).
 *
 * --workers N (requires --manifest) runs the sweep through N
 * tarantula_worker processes over the manifest directory instead of
 * in-process threads -- the distributed-farm execution path
 * (DESIGN.md §12) behind the familiar CLI. The report is
 * byte-identical to `--jobs N` with the same manifest.
 *
 * SIGINT/SIGTERM shut down gracefully: the first signal stops
 * dispatching (in-flight jobs finish and their records store
 * cleanly), the second force-exits.
 */

#include <chrono>
#include <csignal>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <optional>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <sys/wait.h>
#include <unistd.h>

#include "base/logging.hh"
#include "farm/spawn.hh"
#include "farm/status.hh"
#include "proc/machine_config.hh"
#include "sim/batch_manifest.hh"
#include "sim/result_sink.hh"
#include "sim/sim_farm.hh"
#include "sim/sweep.hh"
#include "snap/snapshot_file.hh"
#include "workloads/workload.hh"

using namespace tarantula;

namespace
{

// Graceful-shutdown plumbing: the first signal stops dispatching (the
// running SimFarm skips jobs not yet started; worker children get
// SIGTERM and park), the second force-exits.
volatile std::sig_atomic_t g_signals = 0;
sim::SimFarm *g_farm = nullptr;

void
onSignal(int)
{
    g_signals = g_signals + 1;  // no volatile ++ in C++20
    if (g_signals >= 2)
        ::_exit(130);
    if (g_farm)
        g_farm->requestStop();
}

void
usage()
{
    std::printf(
        "usage: tarantula_batch [options]\n"
        "  --machines LIST  comma-separated Table 3 names, or 'all'\n"
        "                   (default T); EV8, EV8+, T, T4, T10\n"
        "  --workloads LIST 'all', 'micro', 'figure', 'rivec', or\n"
        "                   a comma-separated name list (default all);\n"
        "                   an entry may be a '+'-joined per-core\n"
        "                   placement list (skipped at 1 core;\n"
        "                   needs some --cores entry > 1)\n"
        "  --cores LIST     comma-separated core counts; each adds a\n"
        "                   CMP grid dimension (default 1)\n"
        "  --seeds LIST     comma-separated workload seeds; each adds\n"
        "                   a grid dimension (default 0); seeds\n"
        "                   parameterize the fuzz/fuzzs families\n"
        "  --vls LIST       comma-separated vector lengths (default\n"
        "                   0 = full VL); non-zero entries need\n"
        "                   VL-agnostic workloads (see --list)\n"
        "  --vm-page-bits LIST  comma-separated log2 page sizes; each\n"
        "                   adds a VM grid dimension (default 0 = the\n"
        "                   flat-cost PALcode refill; 29 = the paper's\n"
        "                   512 MB pages, 13 = 8 KB)\n"
        "  --vm-walk-levels N   page-table walk depth (default 3)\n"
        "  --vm-asids N     ASID space; context switches flush\n"
        "                   selectively when > 1 (default 1)\n"
        "  --vm-switch-every N  context-switch period in cycles\n"
        "                   (default 0 = never)\n"
        "  --vm-shootdown-every N  broadcast a TLB shootdown every\n"
        "                   N-th insert (default 0 = never)\n"
        "  --vm-ptes-uncached   force every PTE read to DRAM instead\n"
        "                   of probing the L2\n"
        "  --jobs N         worker threads (default: host threads)\n"
        "  --json FILE      write the batch report there instead of\n"
        "                   stdout\n"
        "  --no-pump        disable the stride-1 PUMP on every job\n"
        "  --force-crbox    route strided accesses through the CR box\n"
        "  --max-cycles N   per-job simulated-cycle budget\n"
        "  --faults SPEC    inject faults on every job (FaultPlan\n"
        "                   spec, e.g. drop_fill@3000 or\n"
        "                   random:7@20000); pair with --check\n"
        "  --check          run the integrity checkers on every job\n"
        "  --no-fast-forward  step every cycle on every job instead\n"
        "                   of jumping over quiescent ones\n"
        "  --no-ucache      use the reference decode-per-step\n"
        "                   interpreter on every job (bit-identical,\n"
        "                   slower)\n"
        "  --deadlock-cycles N  per-job no-retirement watchdog\n"
        "                   (0 keeps the machine default of 1M)\n"
        "  --trace-dir DIR  write a Chrome trace-event JSON per job\n"
        "                   into DIR (<machine>_<workload>.trace.json)\n"
        "  --sample-every N snapshot each job's stats every N cycles\n"
        "                   into its record's timeseries\n"
        "  --sample-stats P comma-separated stat-name prefixes to\n"
        "                   sample (default: every scalar stat)\n"
        "  --quiet          no per-job progress on stderr\n"
        "  --list           list machines and workloads, then exit\n"
        "  --manifest DIR   store each job's record in DIR and skip\n"
        "                   jobs already completed there (crash\n"
        "                   resume; implies deterministic records)\n"
        "  --warm-from FILE warm-start every matching grid point from\n"
        "                   this snapshot file\n"
        "  --workers N      run the sweep through N tarantula_worker\n"
        "                   processes over the --manifest directory\n"
        "                   (requires --manifest; report is\n"
        "                   byte-identical to --jobs N)\n"
        "  --worker-bin P   tarantula_worker executable (default:\n"
        "                   next to this binary)\n");
}

void
listEverything()
{
    std::printf("machines:\n");
    for (const auto &m : proc::machineNames())
        std::printf("  %s\n", m.c_str());
    std::printf("workloads ([vl] = VL-agnostic, accepts --vls):\n");
    for (const auto &w : workloads::allWorkloads())
        std::printf("  %-14s %s%s\n", w.name.c_str(),
                    w.description.c_str(),
                    w.vlAgnostic ? " [vl]" : "");
    std::printf(
        "  %-14s generated vector fuzz program [vl]; --seeds picks\n"
        "  %-14s the program, see tarantula_fuzz\n"
        "  %-14s generated scalar fuzz program [vl]\n",
        "fuzz", "", "fuzzs");
}

std::uint64_t
parseU64(const std::string &arg, const std::string &value)
{
    try {
        std::size_t pos = 0;
        const std::uint64_t v = std::stoull(value, &pos);
        if (pos != value.size())
            throw std::invalid_argument(value);
        return v;
    } catch (const std::exception &) {
        fatal("invalid number '%s' for %s", value.c_str(),
              arg.c_str());
    }
}

int
run(int argc, char **argv)
{
    sim::SweepOptions sweep;
    std::string json_file;
    unsigned jobs = 0;
    bool quiet = false;
    std::string trace_dir;
    std::string manifest_dir;
    std::string warm_from;
    unsigned workers = 0;
    std::string worker_bin;

    // Accept --opt=value alongside --opt value: split at the first
    // '=' so both spellings hit the same parser below.
    std::vector<std::string> args;
    for (int i = 1; i < argc; ++i) {
        const std::string a = argv[i];
        const std::size_t eq = a.find('=');
        if (a.size() > 2 && a[0] == '-' && a[1] == '-' &&
            eq != std::string::npos) {
            args.push_back(a.substr(0, eq));
            args.push_back(a.substr(eq + 1));
        } else {
            args.push_back(a);
        }
    }

    for (std::size_t i = 0; i < args.size(); ++i) {
        const std::string arg = args[i];
        auto next = [&]() -> std::string {
            if (i + 1 >= args.size())
                fatal("missing value for %s", arg.c_str());
            return args[++i];
        };
        if (arg == "--machines") {
            sweep.machines = next();
        } else if (arg == "--workloads") {
            sweep.workloads = next();
        } else if (arg == "--cores") {
            sweep.cores = next();
        } else if (arg == "--seeds") {
            sweep.seeds = next();
        } else if (arg == "--vls") {
            sweep.vls = next();
        } else if (arg == "--vm-page-bits") {
            sweep.vmPageBits = next();
        } else if (arg == "--vm-walk-levels") {
            sweep.vmWalkLevels =
                static_cast<unsigned>(parseU64(arg, next()));
        } else if (arg == "--vm-asids") {
            sweep.vmAsids =
                static_cast<unsigned>(parseU64(arg, next()));
        } else if (arg == "--vm-switch-every") {
            sweep.vmSwitchEvery = parseU64(arg, next());
        } else if (arg == "--vm-shootdown-every") {
            sweep.vmShootdownEvery = parseU64(arg, next());
        } else if (arg == "--vm-ptes-uncached") {
            sweep.vmPtesUncached = true;
        } else if (arg == "--jobs") {
            jobs = static_cast<unsigned>(parseU64(arg, next()));
        } else if (arg == "--json") {
            json_file = next();
        } else if (arg == "--no-pump") {
            sweep.noPump = true;
        } else if (arg == "--force-crbox") {
            sweep.forceCrBox = true;
        } else if (arg == "--max-cycles") {
            sweep.maxCycles = parseU64(arg, next());
        } else if (arg == "--faults") {
            sweep.faults = next();
        } else if (arg == "--check") {
            sweep.check = true;
        } else if (arg == "--no-fast-forward") {
            sweep.fastForward = false;
        } else if (arg == "--no-ucache") {
            sweep.ucache = false;
        } else if (arg == "--deadlock-cycles") {
            sweep.deadlockCycles = parseU64(arg, next());
        } else if (arg == "--trace-dir") {
            trace_dir = next();
        } else if (arg == "--sample-every") {
            sweep.sampleEvery = parseU64(arg, next());
        } else if (arg == "--sample-stats") {
            sweep.sampleStats = next();
        } else if (arg == "--manifest") {
            manifest_dir = next();
        } else if (arg == "--warm-from") {
            warm_from = next();
        } else if (arg == "--workers") {
            workers = static_cast<unsigned>(parseU64(arg, next()));
        } else if (arg == "--worker-bin") {
            worker_bin = next();
        } else if (arg == "--quiet") {
            quiet = true;
        } else if (arg == "--list") {
            listEverything();
            return 0;
        } else if (arg == "--help" || arg == "-h") {
            usage();
            return 0;
        } else {
            usage();
            fatal("unknown option '%s'", arg.c_str());
        }
    }

    if (!trace_dir.empty()) {
        std::error_code ec;
        std::filesystem::create_directories(trace_dir, ec);
        if (ec)
            fatal("cannot create '%s': %s", trace_dir.c_str(),
                  ec.message().c_str());
    }
    sweep.trace = !trace_dir.empty();

    // The shared sweep module does the spec validation and grid
    // expansion -- the same code path tarantula_farm and
    // tarantula_worker execute, so the three drivers cannot drift.
    std::vector<sim::Job> grid;
    try {
        grid = sim::buildSweep(sweep);
    } catch (const std::invalid_argument &e) {
        fatal("%s", e.what());
    }
    std::set<std::string> machine_set, name_set;
    std::set<unsigned> core_set;
    for (const auto &job : grid) {
        machine_set.insert(job.machine);
        name_set.insert(job.workload);
        core_set.insert(job.cores);
    }

    if (!warm_from.empty()) {
        // One warmed checkpoint fans across every grid point it was
        // taken for; the rest of the grid stays cold.
        snap::SnapshotManifest snap_manifest;
        try {
            snap_manifest = snap::readSnapshotManifest(warm_from);
        } catch (const snap::SnapshotError &e) {
            std::fprintf(stderr, "warm-start failed: %s\n", e.what());
            return 2;
        }
        std::size_t matched = 0;
        for (auto &job : grid) {
            if (job.machine == snap_manifest.machine &&
                job.workload == snap_manifest.workload &&
                job.cores == snap_manifest.cores) {
                job.resumeFrom = warm_from;
                ++matched;
            }
        }
        std::fprintf(stderr,
                     "simfarm: warm-start %s (machine %s, workload "
                     "%s, cycle %llu) matches %zu of %zu jobs\n",
                     warm_from.c_str(), snap_manifest.machine.c_str(),
                     snap_manifest.workload.c_str(),
                     static_cast<unsigned long long>(
                         snap_manifest.cycle),
                     matched, grid.size());
    }

    if (workers > 0) {
        // Distributed execution: pin the sweep into the manifest
        // directory and drive it entirely through tarantula_worker
        // processes -- the same lease protocol tarantula_farm uses,
        // behind this CLI. The report comes out byte-identical to an
        // in-process `--jobs workers` run over the same manifest.
        if (manifest_dir.empty())
            fatal("--workers requires --manifest DIR");
        if (!trace_dir.empty())
            fatal("--workers cannot collect --trace-dir traces; "
                  "records only");
        std::vector<sim::Job> pinned;
        try {
            pinned = sim::declareSweep(manifest_dir, grid);
        } catch (const std::invalid_argument &e) {
            fatal("%s", e.what());
        }
        std::signal(SIGTERM, onSignal);
        std::signal(SIGINT, onSignal);

        farm::WorkerCommand cmd;
        cmd.binPath = worker_bin.empty()
            ? farm::selfExeDir() + "/tarantula_worker"
            : worker_bin;
        cmd.dir = manifest_dir;
        unsigned next_name = 0;
        std::vector<pid_t> pids;
        auto spawnOne = [&] {
            cmd.name = "w" + std::to_string(++next_name);
            pids.push_back(farm::spawnWorker(cmd));
        };
        for (unsigned i = 0; i < workers; ++i)
            spawnOne();
        std::fprintf(stderr,
                     "simfarm: %zu jobs through %u worker "
                     "processes over %s\n",
                     pinned.size(), workers, manifest_dir.c_str());

        bool draining = false;
        for (;;) {
            farm::reapExited(pids);
            if (g_signals && !draining) {
                draining = true;
                for (pid_t pid : pids)
                    farm::drainWorker(pid);
                std::fprintf(stderr,
                             "simfarm: interrupted; draining "
                             "workers (rerun to resume)\n");
            }
            if (draining) {
                if (pids.empty())
                    return 130;
            } else if (farm::scanFarm(manifest_dir).complete()) {
                break;
            } else if (pids.empty()) {
                // Workers died with work left: keep the sweep live.
                spawnOne();
            }
            std::this_thread::sleep_for(
                std::chrono::milliseconds(50));
        }
        while (!pids.empty()) {
            farm::reapExited(pids);
            std::this_thread::sleep_for(
                std::chrono::milliseconds(20));
        }

        std::ostringstream report;
        if (!farm::writeFarmReport(report, manifest_dir, workers))
            fatal("sweep complete but records missing");
        if (json_file.empty()) {
            std::cout << report.str();
        } else {
            std::ofstream out(json_file);
            if (!out)
                fatal("cannot open '%s'", json_file.c_str());
            out << report.str();
            std::fprintf(stderr, "simfarm: report written to %s\n",
                         json_file.c_str());
        }
        const farm::FarmStatus st = farm::scanFarm(manifest_dir);
        return st.ok == st.total ? 0 : 1;
    }

    // The manifest resume pass: jobs with a stored record are never
    // re-run; their records splice into the report verbatim.
    std::optional<sim::BatchManifest> manifest;
    std::vector<sim::BatchRecord> records(grid.size());
    std::vector<bool> stored(grid.size(), false);
    if (!manifest_dir.empty()) {
        manifest.emplace(manifest_dir);
        std::size_t skipped = 0;
        for (std::size_t i = 0; i < grid.size(); ++i) {
            if (manifest->load(grid[i], records[i])) {
                stored[i] = true;
                ++skipped;
            }
        }
        std::fprintf(stderr,
                     "simfarm: manifest %s holds %zu of %zu jobs; "
                     "running %zu\n",
                     manifest_dir.c_str(), skipped, grid.size(),
                     grid.size() - skipped);
    }

    sim::SimFarm farm(jobs);
    g_farm = &farm;
    std::signal(SIGTERM, onSignal);
    std::signal(SIGINT, onSignal);
    std::vector<std::size_t> submitted;     // farm index -> grid index
    for (std::size_t i = 0; i < grid.size(); ++i) {
        if (!stored[i]) {
            farm.submit(grid[i]);
            submitted.push_back(i);
        }
    }

    if (core_set.size() == 1 && *core_set.begin() == 1) {
        std::fprintf(stderr,
                     "simfarm: %zu jobs (%zu machines x %zu "
                     "workloads) on %u threads\n",
                     farm.pending(), machine_set.size(),
                     name_set.size(), farm.threads());
    } else {
        std::fprintf(stderr,
                     "simfarm: %zu jobs (%zu machines x %zu "
                     "workloads x %zu core counts) on %u threads\n",
                     farm.pending(), machine_set.size(),
                     name_set.size(), core_set.size(),
                     farm.threads());
    }

    auto progress = [&](const sim::JobResult &r, std::size_t done,
                        std::size_t total) {
        // Record-as-you-go is the crash-resume guarantee: a batch
        // killed here loses at most the jobs still in flight.
        if (manifest)
            manifest->store(r.job, sim::toBatchRecord(r, true));
        if (quiet)
            return;
        std::fprintf(stderr, "[%3zu/%zu] %-9s %s/%s (%.2fs)\n", done,
                     total, sim::toString(r.status),
                     r.job.machine.c_str(), r.job.workload.c_str(),
                     r.hostSeconds);
    };
    const sim::BatchResult batch = farm.run(progress);
    g_farm = nullptr;
    for (std::size_t k = 0; k < submitted.size(); ++k)
        records[submitted[k]] =
            sim::toBatchRecord(batch.jobs[k], manifest.has_value());

    if (g_signals && manifest) {
        // In-flight jobs stored cleanly; undispatched ones have no
        // record. A partial report would be misleading -- resume
        // instead.
        std::fprintf(stderr,
                     "simfarm: interrupted; completed records are in "
                     "%s; rerun the same command to resume\n",
                     manifest_dir.c_str());
        return 130;
    }

    if (!trace_dir.empty()) {
        std::size_t written = 0;
        for (const auto &r : batch.jobs) {
            if (r.traceJson.empty())
                continue;
            std::string stem = r.job.machine + "_" + r.job.workload;
            if (r.job.cores != 1)
                stem += "_c" + std::to_string(r.job.cores);
            for (char &c : stem) {
                if (c == '+')
                    c = 'p';    // EV8+ -> EV8p: filesystem-safe
                else if (c == ',')
                    c = '-';    // CMP placement lists, likewise
            }
            const std::filesystem::path path =
                std::filesystem::path(trace_dir) /
                (stem + ".trace.json");
            std::ofstream out(path);
            if (!out)
                fatal("cannot open '%s'", path.c_str());
            out << r.traceJson;
            ++written;
        }
        std::fprintf(stderr, "simfarm: %zu traces written to %s\n",
                     written, trace_dir.c_str());
    }

    std::fprintf(stderr,
                 "simfarm: %zu ok, %zu timed out, %zu failed; "
                 "wall %.2fs, serial-equivalent %.2fs, speedup "
                 "%.2fx\n",
                 batch.count(sim::JobStatus::Ok),
                 batch.count(sim::JobStatus::TimedOut),
                 batch.count(sim::JobStatus::Failed),
                 batch.wallSeconds, batch.serialSeconds,
                 batch.speedupVsSerial());

    // Manifest mode assembles the report from the stored + fresh
    // records (deterministic: rerun-identical bytes); otherwise the
    // classic path with live host timing.
    auto writeReport = [&](std::ostream &os) {
        if (manifest)
            sim::writeBatchRecords(os, records, farm.threads());
        else
            sim::writeBatchReport(os, batch);
    };
    if (json_file.empty()) {
        writeReport(std::cout);
    } else {
        std::ofstream out(json_file);
        if (!out)
            fatal("cannot open '%s'", json_file.c_str());
        writeReport(out);
        std::fprintf(stderr, "simfarm: report written to %s\n",
                     json_file.c_str());
    }
    if (g_signals)
        return 130;     // report written, but the sweep is partial
    bool all_ok = batch.allOk();
    if (manifest) {
        all_ok = true;
        for (const auto &rec : records)
            all_ok = all_ok && rec.status == sim::JobStatus::Ok;
    }
    return all_ok ? 0 : 1;
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    try {
        return run(argc, argv);
    } catch (const FatalError &) {
        return 2; // fatal() already printed the message
    } catch (const std::exception &e) {
        std::fprintf(stderr, "error: %s\n", e.what());
        return 2;
    }
}
