/**
 * @file
 * Batch sweep driver: run a machine x workload x knob grid through
 * SimFarm's worker pool and export every result as JSON.
 *
 *   tarantula_batch [--machines EV8,T,...|all] [--workloads all|micro|
 *                   figure|NAME,NAME,...] [--cores LIST] [--jobs N]
 *                   [--json FILE] [--no-pump] [--force-crbox]
 *                   [--max-cycles N] [--trace-dir DIR]
 *                   [--sample-every N] [--sample-stats PREFIXES]
 *                   [--quiet] [--list] [--manifest DIR]
 *                   [--warm-from FILE]
 *
 * --cores adds a CMP dimension to the grid (machine x workload x
 * cores). A workload entry may itself be a '+'-joined per-core
 * placement list -- "copy+dgemm" runs copy on even cores and dgemm on
 * odd ones (DESIGN.md §11). Placement entries are skipped at the
 * grid's 1-core points (they have no single-core meaning) and are a
 * spec error when no --cores entry exceeds 1.
 *
 * One invocation reproduces the Figure 6/7 grids: e.g.
 *   tarantula_batch --machines EV8,EV8+,T --workloads figure --jobs 8
 * Progress goes to stderr; the JSON batch report goes to stdout or to
 * the --json file, so the tool composes with shell pipelines.
 *
 * --manifest makes the batch crash-resumable: each completed job's
 * record is stored in DIR as it finishes, a rerun of the same sweep
 * skips stored jobs, and the final report is byte-identical to an
 * uninterrupted run's (host-timing fields are zeroed in this mode).
 * --warm-from fans one tarantula.snapshot.v1 checkpoint across every
 * grid point matching its machine and workload (DESIGN.md §10).
 */

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "base/logging.hh"
#include "proc/machine_config.hh"
#include "sim/batch_manifest.hh"
#include "sim/result_sink.hh"
#include "sim/sim_farm.hh"
#include "snap/snapshot_file.hh"
#include "workloads/workload.hh"

using namespace tarantula;

namespace
{

void
usage()
{
    std::printf(
        "usage: tarantula_batch [options]\n"
        "  --machines LIST  comma-separated Table 3 names, or 'all'\n"
        "                   (default T); EV8, EV8+, T, T4, T10\n"
        "  --workloads LIST 'all', 'micro', 'figure', or a\n"
        "                   comma-separated name list (default all);\n"
        "                   an entry may be a '+'-joined per-core\n"
        "                   placement list (skipped at 1 core;\n"
        "                   needs some --cores entry > 1)\n"
        "  --cores LIST     comma-separated core counts; each adds a\n"
        "                   CMP grid dimension (default 1)\n"
        "  --jobs N         worker threads (default: host threads)\n"
        "  --json FILE      write the batch report there instead of\n"
        "                   stdout\n"
        "  --no-pump        disable the stride-1 PUMP on every job\n"
        "  --force-crbox    route strided accesses through the CR box\n"
        "  --max-cycles N   per-job simulated-cycle budget\n"
        "  --check          run the integrity checkers on every job\n"
        "  --no-fast-forward  step every cycle on every job instead\n"
        "                   of jumping over quiescent ones\n"
        "  --deadlock-cycles N  per-job no-retirement watchdog\n"
        "                   (0 keeps the machine default of 1M)\n"
        "  --trace-dir DIR  write a Chrome trace-event JSON per job\n"
        "                   into DIR (<machine>_<workload>.trace.json)\n"
        "  --sample-every N snapshot each job's stats every N cycles\n"
        "                   into its record's timeseries\n"
        "  --sample-stats P comma-separated stat-name prefixes to\n"
        "                   sample (default: every scalar stat)\n"
        "  --quiet          no per-job progress on stderr\n"
        "  --list           list machines and workloads, then exit\n"
        "  --manifest DIR   store each job's record in DIR and skip\n"
        "                   jobs already completed there (crash\n"
        "                   resume; implies deterministic records)\n"
        "  --warm-from FILE warm-start every matching grid point from\n"
        "                   this snapshot file\n");
}

std::vector<std::string>
splitCsv(const std::string &csv)
{
    std::vector<std::string> out;
    std::stringstream ss(csv);
    std::string item;
    while (std::getline(ss, item, ',')) {
        if (!item.empty())
            out.push_back(item);
    }
    return out;
}

std::vector<std::string>
workloadNames(const std::string &spec)
{
    std::vector<std::string> names;
    if (spec == "all") {
        for (const auto &w : workloads::allWorkloads())
            names.push_back(w.name);
    } else if (spec == "micro") {
        for (const auto &w : workloads::microkernelSuite())
            names.push_back(w.name);
    } else if (spec == "figure") {
        for (const auto &w : workloads::figureSuite())
            names.push_back(w.name);
    } else {
        names = splitCsv(spec);
    }
    return names;
}

void
listEverything()
{
    std::printf("machines:\n");
    for (const auto &m : proc::machineNames())
        std::printf("  %s\n", m.c_str());
    std::printf("workloads:\n");
    for (const auto &w : workloads::allWorkloads())
        std::printf("  %-14s %s\n", w.name.c_str(),
                    w.description.c_str());
}

std::uint64_t
parseU64(const std::string &arg, const std::string &value)
{
    try {
        std::size_t pos = 0;
        const std::uint64_t v = std::stoull(value, &pos);
        if (pos != value.size())
            throw std::invalid_argument(value);
        return v;
    } catch (const std::exception &) {
        fatal("invalid number '%s' for %s", value.c_str(),
              arg.c_str());
    }
}

int
run(int argc, char **argv)
{
    std::string machines_spec = "T";
    std::string workloads_spec = "all";
    std::string cores_spec = "1";
    std::string json_file;
    unsigned jobs = 0;
    bool no_pump = false;
    bool force_crbox = false;
    bool check = false;
    bool fast_forward = true;
    bool quiet = false;
    std::uint64_t deadlock_cycles = 0;
    std::uint64_t max_cycles = 8ULL << 30;
    std::string trace_dir;
    std::uint64_t sample_every = 0;
    std::string sample_stats;
    std::string manifest_dir;
    std::string warm_from;

    // Accept --opt=value alongside --opt value: split at the first
    // '=' so both spellings hit the same parser below.
    std::vector<std::string> args;
    for (int i = 1; i < argc; ++i) {
        const std::string a = argv[i];
        const std::size_t eq = a.find('=');
        if (a.size() > 2 && a[0] == '-' && a[1] == '-' &&
            eq != std::string::npos) {
            args.push_back(a.substr(0, eq));
            args.push_back(a.substr(eq + 1));
        } else {
            args.push_back(a);
        }
    }

    for (std::size_t i = 0; i < args.size(); ++i) {
        const std::string arg = args[i];
        auto next = [&]() -> std::string {
            if (i + 1 >= args.size())
                fatal("missing value for %s", arg.c_str());
            return args[++i];
        };
        if (arg == "--machines") {
            machines_spec = next();
        } else if (arg == "--workloads") {
            workloads_spec = next();
        } else if (arg == "--cores") {
            cores_spec = next();
        } else if (arg == "--jobs") {
            jobs = static_cast<unsigned>(parseU64(arg, next()));
        } else if (arg == "--json") {
            json_file = next();
        } else if (arg == "--no-pump") {
            no_pump = true;
        } else if (arg == "--force-crbox") {
            force_crbox = true;
        } else if (arg == "--max-cycles") {
            max_cycles = parseU64(arg, next());
        } else if (arg == "--check") {
            check = true;
        } else if (arg == "--no-fast-forward") {
            fast_forward = false;
        } else if (arg == "--deadlock-cycles") {
            deadlock_cycles = parseU64(arg, next());
        } else if (arg == "--trace-dir") {
            trace_dir = next();
        } else if (arg == "--sample-every") {
            sample_every = parseU64(arg, next());
        } else if (arg == "--sample-stats") {
            sample_stats = next();
        } else if (arg == "--manifest") {
            manifest_dir = next();
        } else if (arg == "--warm-from") {
            warm_from = next();
        } else if (arg == "--quiet") {
            quiet = true;
        } else if (arg == "--list") {
            listEverything();
            return 0;
        } else if (arg == "--help" || arg == "-h") {
            usage();
            return 0;
        } else {
            usage();
            fatal("unknown option '%s'", arg.c_str());
        }
    }

    std::vector<std::string> machines;
    if (machines_spec == "all")
        machines = proc::machineNames();
    else
        machines = splitCsv(machines_spec);
    const std::vector<std::string> names =
        workloadNames(workloads_spec);
    if (machines.empty() || names.empty())
        fatal("empty sweep: no machines or no workloads selected");

    std::vector<unsigned> core_counts;
    for (const auto &c : splitCsv(cores_spec)) {
        const unsigned n =
            static_cast<unsigned>(parseU64("--cores", c));
        if (n == 0)
            fatal("--cores entries need at least 1");
        core_counts.push_back(n);
    }
    if (core_counts.empty())
        fatal("empty --cores list");

    // Validate the spec up front so a typo fails fast rather than as
    // N failed jobs deep into the sweep. A '+'-joined entry is a
    // per-core placement list: validate each member name.
    for (const auto &m : machines)
        proc::machineByName(m);
    for (const auto &n : names) {
        std::stringstream ss(n);
        std::string member;
        bool placement = n.find('+') != std::string::npos;
        while (std::getline(ss, member, '+'))
            workloads::byName(member);
        if (placement) {
            // A placement needs >= 2 cores; in a mixed grid the 1-core
            // points are simply skipped below, but a placement that
            // could NEVER run is a spec error.
            bool runnable = false;
            for (unsigned c : core_counts)
                runnable |= c > 1;
            if (!runnable) {
                fatal("placement list '%s' needs --cores > 1",
                      n.c_str());
            }
        }
    }

    if (!trace_dir.empty()) {
        std::error_code ec;
        std::filesystem::create_directories(trace_dir, ec);
        if (ec)
            fatal("cannot create '%s': %s", trace_dir.c_str(),
                  ec.message().c_str());
    }

    std::vector<sim::Job> grid;
    for (unsigned c : core_counts) {
    for (const auto &m : machines) {
        for (const auto &n : names) {
            // Placement lists have no 1-core meaning: skip the point.
            if (c == 1 && n.find('+') != std::string::npos)
                continue;
            sim::Job job;
            job.machine = m;
            // The Job carries placement lists comma-separated; the
            // CLI uses '+' so the list survives splitCsv above.
            job.workload = n;
            for (char &ch : job.workload) {
                if (ch == '+')
                    ch = ',';
            }
            job.cores = c;
            job.noPump = no_pump;
            job.forceCrBox = force_crbox;
            job.check = check;
            job.fastForward = fast_forward;
            job.deadlockCycles = deadlock_cycles;
            job.maxCycles = max_cycles;
            job.trace = !trace_dir.empty();
            job.sampleEvery = sample_every;
            job.sampleStats = sample_stats;
            grid.push_back(job);
        }
    }
    }

    if (!warm_from.empty()) {
        // One warmed checkpoint fans across every grid point it was
        // taken for; the rest of the grid stays cold.
        snap::SnapshotManifest snap_manifest;
        try {
            snap_manifest = snap::readSnapshotManifest(warm_from);
        } catch (const snap::SnapshotError &e) {
            std::fprintf(stderr, "warm-start failed: %s\n", e.what());
            return 2;
        }
        std::size_t matched = 0;
        for (auto &job : grid) {
            if (job.machine == snap_manifest.machine &&
                job.workload == snap_manifest.workload &&
                job.cores == snap_manifest.cores) {
                job.resumeFrom = warm_from;
                ++matched;
            }
        }
        std::fprintf(stderr,
                     "simfarm: warm-start %s (machine %s, workload "
                     "%s, cycle %llu) matches %zu of %zu jobs\n",
                     warm_from.c_str(), snap_manifest.machine.c_str(),
                     snap_manifest.workload.c_str(),
                     static_cast<unsigned long long>(
                         snap_manifest.cycle),
                     matched, grid.size());
    }

    // The manifest resume pass: jobs with a stored record are never
    // re-run; their records splice into the report verbatim.
    std::optional<sim::BatchManifest> manifest;
    std::vector<sim::BatchRecord> records(grid.size());
    std::vector<bool> stored(grid.size(), false);
    if (!manifest_dir.empty()) {
        manifest.emplace(manifest_dir);
        std::size_t skipped = 0;
        for (std::size_t i = 0; i < grid.size(); ++i) {
            if (manifest->load(grid[i], records[i])) {
                stored[i] = true;
                ++skipped;
            }
        }
        std::fprintf(stderr,
                     "simfarm: manifest %s holds %zu of %zu jobs; "
                     "running %zu\n",
                     manifest_dir.c_str(), skipped, grid.size(),
                     grid.size() - skipped);
    }

    sim::SimFarm farm(jobs);
    std::vector<std::size_t> submitted;     // farm index -> grid index
    for (std::size_t i = 0; i < grid.size(); ++i) {
        if (!stored[i]) {
            farm.submit(grid[i]);
            submitted.push_back(i);
        }
    }

    if (core_counts.size() == 1 && core_counts[0] == 1) {
        std::fprintf(stderr,
                     "simfarm: %zu jobs (%zu machines x %zu "
                     "workloads) on %u threads\n",
                     farm.pending(), machines.size(), names.size(),
                     farm.threads());
    } else {
        std::fprintf(stderr,
                     "simfarm: %zu jobs (%zu machines x %zu "
                     "workloads x %zu core counts) on %u threads\n",
                     farm.pending(), machines.size(), names.size(),
                     core_counts.size(), farm.threads());
    }

    auto progress = [&](const sim::JobResult &r, std::size_t done,
                        std::size_t total) {
        // Record-as-you-go is the crash-resume guarantee: a batch
        // killed here loses at most the jobs still in flight.
        if (manifest)
            manifest->store(r.job, sim::toBatchRecord(r, true));
        if (quiet)
            return;
        std::fprintf(stderr, "[%3zu/%zu] %-9s %s/%s (%.2fs)\n", done,
                     total, sim::toString(r.status),
                     r.job.machine.c_str(), r.job.workload.c_str(),
                     r.hostSeconds);
    };
    const sim::BatchResult batch = farm.run(progress);
    for (std::size_t k = 0; k < submitted.size(); ++k)
        records[submitted[k]] =
            sim::toBatchRecord(batch.jobs[k], manifest.has_value());

    if (!trace_dir.empty()) {
        std::size_t written = 0;
        for (const auto &r : batch.jobs) {
            if (r.traceJson.empty())
                continue;
            std::string stem = r.job.machine + "_" + r.job.workload;
            if (r.job.cores != 1)
                stem += "_c" + std::to_string(r.job.cores);
            for (char &c : stem) {
                if (c == '+')
                    c = 'p';    // EV8+ -> EV8p: filesystem-safe
                else if (c == ',')
                    c = '-';    // CMP placement lists, likewise
            }
            const std::filesystem::path path =
                std::filesystem::path(trace_dir) /
                (stem + ".trace.json");
            std::ofstream out(path);
            if (!out)
                fatal("cannot open '%s'", path.c_str());
            out << r.traceJson;
            ++written;
        }
        std::fprintf(stderr, "simfarm: %zu traces written to %s\n",
                     written, trace_dir.c_str());
    }

    std::fprintf(stderr,
                 "simfarm: %zu ok, %zu timed out, %zu failed; "
                 "wall %.2fs, serial-equivalent %.2fs, speedup "
                 "%.2fx\n",
                 batch.count(sim::JobStatus::Ok),
                 batch.count(sim::JobStatus::TimedOut),
                 batch.count(sim::JobStatus::Failed),
                 batch.wallSeconds, batch.serialSeconds,
                 batch.speedupVsSerial());

    // Manifest mode assembles the report from the stored + fresh
    // records (deterministic: rerun-identical bytes); otherwise the
    // classic path with live host timing.
    auto writeReport = [&](std::ostream &os) {
        if (manifest)
            sim::writeBatchRecords(os, records, farm.threads());
        else
            sim::writeBatchReport(os, batch);
    };
    if (json_file.empty()) {
        writeReport(std::cout);
    } else {
        std::ofstream out(json_file);
        if (!out)
            fatal("cannot open '%s'", json_file.c_str());
        writeReport(out);
        std::fprintf(stderr, "simfarm: report written to %s\n",
                     json_file.c_str());
    }
    bool all_ok = batch.allOk();
    if (manifest) {
        all_ok = true;
        for (const auto &rec : records)
            all_ok = all_ok && rec.status == sim::JobStatus::Ok;
    }
    return all_ok ? 0 : 1;
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    try {
        return run(argc, argv);
    } catch (const FatalError &) {
        return 2; // fatal() already printed the message
    } catch (const std::exception &e) {
        std::fprintf(stderr, "error: %s\n", e.what());
        return 2;
    }
}
