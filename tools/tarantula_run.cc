/**
 * @file
 * Command-line simulation driver: run any workload from the suite on
 * any Table 3 machine, verify the result, and print (or save) the
 * full statistics tree.
 *
 *   tarantula_run [--machine EV8|EV8+|T|T4|T10] [--workload NAME]
 *                 [--cores N] [--list] [--stats FILE] [--json FILE]
 *                 [--no-pump] [--force-crbox] [--max-cycles N]
 *                 [--trace FILE] [--sample-every N]
 *                 [--sample-stats PREFIXES]
 *                 [--ckpt-at CYCLE[,CYCLE...]] [--ckpt-out PREFIX]
 *                 [--resume FILE]
 *
 * --cores builds an N-core CMP around the shared banked L2
 * (DESIGN.md §11); --workload then accepts a comma-separated
 * placement list assigning one workload per core (shorter lists
 * replicate cyclically).
 *
 * --json writes the same tarantula.job.v1 record SimFarm's
 * tarantula_batch emits per job, so single runs and batch sweeps
 * share one machine-readable schema.
 *
 * --ckpt-at runs to each listed cycle, writes a tarantula.snapshot.v1
 * checkpoint there, and continues; --resume restores one and runs to
 * completion. Snapshot + resume is bit-identical to a straight run
 * (DESIGN.md §10). Every option also accepts the --opt=value form.
 */

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include <deque>

#include "base/logging.hh"
#include "snap/snapshot.hh"
#include "exec/memory.hh"
#include "proc/machine_config.hh"
#include "program/encoding.hh"
#include "sim/result_sink.hh"
#include "system/system.hh"
#include "workloads/workload.hh"

using namespace tarantula;

namespace
{

void
usage()
{
    std::printf(
        "usage: tarantula_run [options]\n"
        "  --machine M     EV8, EV8+, T (default), T4, T10\n"
        "  --workload W    workload name (default dgemm); see --list.\n"
        "                  With --cores, a comma-separated per-core\n"
        "                  placement list (replicated cyclically)\n"
        "  --cores N       CMP: N cores sharing the banked L2\n"
        "                  (default 1, the paper's machine)\n"
        "  --list          list available workloads and exit\n"
        "  --stats FILE    write the full statistics tree to FILE\n"
        "  --json FILE     write a tarantula.job.v1 JSON record to "
        "FILE\n"
        "  --no-pump       disable the stride-1 PUMP (Figure 9)\n"
        "  --save-program FILE  serialize the chosen program (binary)\n"
        "  --force-crbox   route strided accesses through the CR box\n"
        "  --max-cycles N  simulation safety bound\n"
        "  --check         run the integrity checkers every interval\n"
        "  --no-fast-forward  step every cycle instead of jumping over\n"
        "                  quiescent ones (bit-identical, slower)\n"
        "  --no-ucache     use the reference decode-per-step\n"
        "                  interpreter instead of the predecoded-µop\n"
        "                  engine (bit-identical, slower)\n"
        "  --deadlock-cycles N  no-retirement watchdog (0 disables;\n"
        "                  default 1M)\n"
        "  --trace FILE    write a Chrome trace-event JSON (load it in\n"
        "                  Perfetto / chrome://tracing; docs/TRACING.md)\n"
        "  --sample-every N  snapshot the stats tree every N cycles\n"
        "                  into the job record's timeseries\n"
        "  --sample-stats P  comma-separated stat-name prefixes to\n"
        "                  sample (default: every scalar stat)\n"
        "  --ckpt-at LIST  comma-separated cycles; write a snapshot\n"
        "                  at each and keep running\n"
        "  --ckpt-out P    checkpoint path prefix (default\n"
        "                  ckpt_<machine>_<workload>)\n"
        "  --resume FILE   restore a snapshot and run to completion\n"
        "OS/VM scenario layer (DESIGN.md §15; default off = the flat-\n"
        "cost PALcode refill, bit-identical to the classic machine):\n"
        "  --vm-page-bits N  enable page-table walks at log2 page\n"
        "                  size N (29 = the paper's 512 MB pages,\n"
        "                  13 = 8 KB)\n"
        "  --vm-walk-levels N  walk depth (default 3)\n"
        "  --vm-asids N    ASID space; context switches flush\n"
        "                  selectively when > 1 (default 1)\n"
        "  --vm-switch-every N  context-switch period in cycles\n"
        "                  (default 0 = never)\n"
        "  --vm-shootdown-every N  broadcast a TLB shootdown every\n"
        "                  N-th insert (default 0 = never)\n"
        "  --vm-ptes-uncached  force every PTE read to DRAM instead\n"
        "                  of probing the L2\n");
}

void
listWorkloads()
{
    std::printf("%-14s %s\n", "name", "description");
    for (const auto &w : workloads::allWorkloads())
        std::printf("%-14s %s\n", w.name.c_str(),
                    w.description.c_str());
}

std::uint64_t
parseU64(const std::string &arg, const std::string &value)
{
    try {
        std::size_t pos = 0;
        const std::uint64_t v = std::stoull(value, &pos);
        if (pos != value.size())
            throw std::invalid_argument(value);
        return v;
    } catch (const std::exception &) {
        fatal("invalid number '%s' for %s", value.c_str(),
              arg.c_str());
    }
}

int
run(int argc, char **argv)
{
    std::string machine = "T";
    std::string workload = "dgemm";
    unsigned cores = 1;
    std::string stats_file;
    std::string json_file;
    std::string save_program;
    bool no_pump = false;
    bool force_crbox = false;
    bool check = false;
    bool fast_forward = true;
    bool ucache = true;
    bool deadlock_set = false;
    std::uint64_t deadlock_cycles = 0;
    std::uint64_t max_cycles = 8ULL << 30;
    std::string trace_file;
    std::uint64_t sample_every = 0;
    std::string sample_stats;
    std::string ckpt_at_spec;
    std::string ckpt_out;
    std::string resume_file;
    unsigned vm_page_bits = 0;
    unsigned vm_walk_levels = 0;
    unsigned vm_asids = 0;
    std::uint64_t vm_switch_every = 0;
    std::uint64_t vm_shootdown_every = 0;
    bool vm_ptes_uncached = false;

    // Accept --opt=value alongside --opt value: split at the first
    // '=' so both spellings hit the same parser below.
    std::vector<std::string> args;
    for (int i = 1; i < argc; ++i) {
        const std::string a = argv[i];
        const std::size_t eq = a.find('=');
        if (a.size() > 2 && a[0] == '-' && a[1] == '-' &&
            eq != std::string::npos) {
            args.push_back(a.substr(0, eq));
            args.push_back(a.substr(eq + 1));
        } else {
            args.push_back(a);
        }
    }

    for (std::size_t i = 0; i < args.size(); ++i) {
        const std::string arg = args[i];
        auto next = [&]() -> std::string {
            if (i + 1 >= args.size())
                fatal("missing value for %s", arg.c_str());
            return args[++i];
        };
        if (arg == "--machine") {
            machine = next();
        } else if (arg == "--workload") {
            workload = next();
        } else if (arg == "--cores") {
            cores = static_cast<unsigned>(parseU64(arg, next()));
            if (cores == 0)
                fatal("--cores needs at least 1");
        } else if (arg == "--stats") {
            stats_file = next();
        } else if (arg == "--json") {
            json_file = next();
        } else if (arg == "--save-program") {
            save_program = next();
        } else if (arg == "--no-pump") {
            no_pump = true;
        } else if (arg == "--force-crbox") {
            force_crbox = true;
        } else if (arg == "--max-cycles") {
            max_cycles = parseU64(arg, next());
        } else if (arg == "--check") {
            check = true;
        } else if (arg == "--no-fast-forward") {
            fast_forward = false;
        } else if (arg == "--no-ucache") {
            ucache = false;
        } else if (arg == "--deadlock-cycles") {
            deadlock_cycles = parseU64(arg, next());
            deadlock_set = true;
        } else if (arg == "--trace") {
            trace_file = next();
        } else if (arg == "--sample-every") {
            sample_every = parseU64(arg, next());
        } else if (arg == "--sample-stats") {
            sample_stats = next();
        } else if (arg == "--ckpt-at") {
            ckpt_at_spec = next();
        } else if (arg == "--ckpt-out") {
            ckpt_out = next();
        } else if (arg == "--resume") {
            resume_file = next();
        } else if (arg == "--vm-page-bits") {
            vm_page_bits =
                static_cast<unsigned>(parseU64(arg, next()));
        } else if (arg == "--vm-walk-levels") {
            vm_walk_levels =
                static_cast<unsigned>(parseU64(arg, next()));
        } else if (arg == "--vm-asids") {
            vm_asids = static_cast<unsigned>(parseU64(arg, next()));
        } else if (arg == "--vm-switch-every") {
            vm_switch_every = parseU64(arg, next());
        } else if (arg == "--vm-shootdown-every") {
            vm_shootdown_every = parseU64(arg, next());
        } else if (arg == "--vm-ptes-uncached") {
            vm_ptes_uncached = true;
        } else if (arg == "--list") {
            listWorkloads();
            return 0;
        } else if (arg == "--help" || arg == "-h") {
            usage();
            return 0;
        } else {
            usage();
            fatal("unknown option '%s'", arg.c_str());
        }
    }

    // Checkpoint stops, sorted and deduplicated so out-of-order lists
    // still snapshot each cycle exactly once.
    std::vector<Cycle> ckpt_stops;
    if (!ckpt_at_spec.empty()) {
        std::stringstream ss(ckpt_at_spec);
        std::string item;
        while (std::getline(ss, item, ',')) {
            if (!item.empty())
                ckpt_stops.push_back(parseU64("--ckpt-at", item));
        }
        std::sort(ckpt_stops.begin(), ckpt_stops.end());
        ckpt_stops.erase(
            std::unique(ckpt_stops.begin(), ckpt_stops.end()),
            ckpt_stops.end());
    }

    proc::MachineConfig cfg = proc::machineByName(machine);
    cfg.vbox.slicer.pumpEnabled = !no_pump;
    cfg.vbox.slicer.forceCrBox = force_crbox;
    cfg.integrity.checks = check;
    cfg.fastForward = fast_forward;
    cfg.ucache = ucache;
    if (deadlock_set)
        cfg.deadlockCycles = deadlock_cycles;
    cfg.trace.events = !trace_file.empty();
    cfg.trace.sampleEvery = sample_every;
    cfg.trace.sampleStats = sample_stats;

    cfg.cmp.numCores = cores;

    if (vm_page_bits) {
        cfg.vm.enabled = true;
        cfg.vm.pageBits = vm_page_bits;
        if (vm_walk_levels)
            cfg.vm.walkLevels = vm_walk_levels;
        if (vm_asids)
            cfg.vm.asids = vm_asids;
        cfg.vm.switchEvery = vm_switch_every;
        cfg.vm.shootdownEvery = vm_shootdown_every;
        cfg.vm.ptesCacheable = !vm_ptes_uncached;
    } else if (vm_walk_levels || vm_asids || vm_switch_every ||
               vm_shootdown_every || vm_ptes_uncached) {
        fatal("--vm-* knobs need --vm-page-bits (the VM master gate)");
    }

    // CMP placement: "a,b" on 4 cores runs a on 0/2, b on 1/3.
    std::vector<std::string> names;
    {
        std::stringstream list(workload);
        std::string item;
        while (std::getline(list, item, ','))
            names.push_back(item);
    }
    if (names.empty())
        fatal("empty --workload");
    if (cores == 1 && names.size() > 1)
        fatal("--workload placement list needs --cores > 1");

    // Deques: the System holds pointers into both, so emplacing one
    // core's state must never relocate an earlier core's.
    std::deque<workloads::Workload> ws;
    std::deque<exec::FunctionalMemory> mems;
    std::vector<const program::Program *> progs;
    std::vector<exec::FunctionalMemory *> memPtrs;
    for (unsigned i = 0; i < cores; ++i) {
        ws.push_back(workloads::byName(names[i % names.size()]));
        mems.emplace_back();
        ws.back().init(mems.back());
        progs.push_back(cfg.hasVbox ? &ws.back().vectorProg
                                    : &ws.back().scalarProg);
        memPtrs.push_back(&mems.back());
    }
    workloads::Workload &w = ws[0];

    if (!save_program.empty()) {
        program::saveProgram(*progs[0], save_program);
        std::printf("program:    %zu instructions written to %s\n",
                    progs[0]->size(), save_program.c_str());
    }
    sys::System cpu(cfg, progs, memPtrs);
    if (resume_file.empty()) {
        for (unsigned i = 0; i < cores; ++i) {
            // Each core's warm lines carry its coloring bias, matching
            // the addresses its traffic will present.
            const Addr bias = sys::System::addrBiasFor(cfg, i);
            for (const auto &r : ws[i].warmRanges) {
                for (std::uint64_t o = 0; o < r.bytes;
                     o += CacheLineBytes)
                    cpu.l2().warmLine((r.base + o) | bias);
            }
        }
    } else {
        // The snapshot carries everything -- warmed L2 lines included.
        try {
            cpu.restoreFrom(resume_file);
        } catch (const snap::SnapshotError &e) {
            std::fprintf(stderr, "resume failed: %s\n", e.what());
            return 2;
        }
        std::printf("resume:     %s at cycle %llu\n",
                    resume_file.c_str(),
                    static_cast<unsigned long long>(cpu.now()));
    }

    std::string ckpt_prefix = ckpt_out;
    if (ckpt_prefix.empty()) {
        ckpt_prefix = "ckpt_" + machine + "_" + workload;
        for (char &c : ckpt_prefix) {
            if (c == '+')
                c = 'p';        // EV8+ -> EV8p: filesystem-safe
            else if (c == ',')
                c = '-';        // CMP placement lists, likewise
        }
    }
    auto ckptPath = [&](Cycle stop) {
        return ckpt_prefix + "_cycle" +
               std::to_string(static_cast<unsigned long long>(stop)) +
               ".tsnap";
    };

    const auto start = std::chrono::steady_clock::now();
    auto hostSeconds = [&] {
        return std::chrono::duration<double>(
            std::chrono::steady_clock::now() - start).count();
    };

    sim::JobResult record;
    record.job.machine = machine;
    record.job.workload = workload;
    record.job.cores = cores;
    record.job.noPump = no_pump;
    record.job.forceCrBox = force_crbox;
    record.job.check = check;
    record.job.fastForward = fast_forward;
    record.job.ucache = ucache;
    record.job.deadlockCycles = deadlock_set ? deadlock_cycles : 0;
    record.job.maxCycles = max_cycles;
    record.job.trace = !trace_file.empty();
    record.job.sampleEvery = sample_every;
    record.job.sampleStats = sample_stats;
    record.job.resumeFrom = resume_file;
    record.job.vmPageBits = vm_page_bits;
    record.job.vmWalkLevels = vm_walk_levels;
    record.job.vmAsids = vm_asids;
    record.job.vmSwitchEvery = vm_switch_every;
    record.job.vmShootdownEvery = vm_shootdown_every;
    record.job.vmPtesUncached = vm_ptes_uncached;
    auto writeTrace = [&] {
        if (trace_file.empty())
            return;
        std::ofstream out(trace_file);
        if (!out)
            fatal("cannot open '%s'", trace_file.c_str());
        cpu.traceSink()->writeChromeTrace(out);
        std::printf("trace:      %llu events on %zu tracks written to "
                    "%s\n",
                    static_cast<unsigned long long>(
                        cpu.traceSink()->numEvents()),
                    cpu.traceSink()->channels().size(),
                    trace_file.c_str());
        if (cpu.traceSink()->numDropped()) {
            std::printf("trace:      %llu events dropped at the "
                        "%llu-event cap\n",
                        static_cast<unsigned long long>(
                            cpu.traceSink()->numDropped()),
                        static_cast<unsigned long long>(
                            cfg.trace.maxEvents));
        }
    };
    auto writeJson = [&] {
        if (json_file.empty())
            return;
        record.hostSeconds = hostSeconds();
        std::ofstream out(json_file);
        if (!out)
            fatal("cannot open '%s'", json_file.c_str());
        sim::writeJobRecord(out, record);
        std::printf("json:       written to %s\n", json_file.c_str());
    };

    proc::RunResult r;
    try {
        bool ran = false;
        for (Cycle stop : ckpt_stops) {
            if (stop <= cpu.now())
                continue;       // resumed past it already
            r = cpu.run(max_cycles, stop);
            ran = true;
            if (cpu.finished())
                break;          // ran out of program before the stop
            const std::string path = ckptPath(stop);
            cpu.snapshot(path, workload);
            std::printf("snapshot:   cycle %llu written to %s\n",
                        static_cast<unsigned long long>(cpu.now()),
                        path.c_str());
        }
        if (!cpu.finished() || !ran)
            r = cpu.run(max_cycles);
    } catch (const std::exception &e) {
        // The machine died -- a panic, an integrity-check failure or
        // the cycle budget. Attach the forensics report so the crash
        // is machine-readable, then bail with a distinct exit code.
        std::fprintf(stderr, "run died: %s\n", e.what());
        record.status = dynamic_cast<const TimeoutError *>(&e)
                            ? sim::JobStatus::TimedOut
                            : sim::JobStatus::Failed;
        record.message = e.what();
        std::ostringstream forensics;
        cpu.writeForensics(forensics, e.what());
        record.forensicsJson = forensics.str();
        writeTrace();    // the events up to the crash still narrate it
        writeJson();
        return 3;
    }
    const double host_seconds = hostSeconds();
    std::string err;
    for (unsigned i = 0; i < cores && err.empty(); ++i) {
        const std::string e = ws[i].check(mems[i]);
        if (!e.empty()) {
            err = cores == 1
                      ? e
                      : "core" + std::to_string(i) + ": " + e;
        }
    }

    if (cores == 1) {
        std::printf("workload:   %s (%s)\n", w.name.c_str(),
                    w.description.c_str());
    } else {
        std::printf("workload:   %s on %u cores\n", workload.c_str(),
                    cores);
    }
    std::printf("machine:    %s @ %.2f GHz (%s program)\n",
                cfg.name.c_str(), cfg.freqGhz,
                cfg.hasVbox ? "vector" : "scalar");
    std::printf("result:     %s\n",
                err.empty() ? "correct" : err.c_str());
    std::printf("cycles:     %llu (%.3f ms wall-clock at this "
                "frequency)\n",
                static_cast<unsigned long long>(r.cycles),
                r.seconds() * 1e3);
    std::printf("insts:      %llu\n",
                static_cast<unsigned long long>(r.insts));
    std::printf("ops/cycle:  %.2f (flops %.2f, mem %.2f, other "
                "%.2f)\n",
                r.opc(), r.fpc(), r.mpc(), r.otherPc());
    if (cores > 1 && r.cycles > 0) {
        for (unsigned i = 0; i < r.perCore.size(); ++i) {
            const auto &pc = r.perCore[i];
            std::printf("  core%u:    %-10s %llu insts, %.2f "
                        "ops/cycle\n",
                        i, ws[i].name.c_str(),
                        static_cast<unsigned long long>(pc.insts),
                        static_cast<double>(pc.ops) /
                            static_cast<double>(r.cycles));
        }
    }
    std::printf("mem raw:    %.1f MB (%.0f MB/s)\n",
                r.rawBytes / 1e6, r.rawBandwidthMBs());
    std::printf("host:       %.1f ms, %.2f Mcycles/s simulated "
                "(%llu jumps skipped %llu cycles)\n",
                r.hostMillis, r.simCyclesPerHostSec() / 1e6,
                static_cast<unsigned long long>(r.ffJumps),
                static_cast<unsigned long long>(r.ffSkippedCycles));
    if (w.usefulBytes > 0)
        std::printf("streams BW: %.0f MB/s\n",
                    r.bandwidthMBs(w.usefulBytes));

    if (!stats_file.empty()) {
        std::ofstream out(stats_file);
        if (!out)
            fatal("cannot open '%s'", stats_file.c_str());
        cpu.stats().report(out);
        std::printf("stats:      written to %s\n", stats_file.c_str());
    }

    writeTrace();
    if (const trace::Sampler *s = cpu.sampler()) {
        std::ostringstream os;
        s->writeJson(os);
        record.timeseriesJson = os.str();
        std::printf("timeseries: %zu samples of %zu stats every %llu "
                    "cycles\n",
                    s->numSamples(), s->numStats(),
                    static_cast<unsigned long long>(s->every()));
    }

    record.run = r;
    record.hostSeconds = host_seconds;
    if (err.empty()) {
        record.status = sim::JobStatus::Ok;
        std::ostringstream stats;
        cpu.stats().reportJson(stats);
        record.statsJson = stats.str();
    } else {
        record.status = sim::JobStatus::Failed;
        record.message = "wrong result: " + err;
    }
    writeJson();
    return err.empty() ? 0 : 1;
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    try {
        return run(argc, argv);
    } catch (const FatalError &) {
        return 2; // fatal() already printed the message
    } catch (const std::exception &e) {
        std::fprintf(stderr, "error: %s\n", e.what());
        return 2;
    }
}
