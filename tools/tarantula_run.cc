/**
 * @file
 * Command-line simulation driver: run any workload from the suite on
 * any Table 3 machine, verify the result, and print (or save) the
 * full statistics tree.
 *
 *   tarantula_run [--machine EV8|EV8+|T|T4|T10] [--workload NAME]
 *                 [--list] [--stats FILE] [--no-pump] [--force-crbox]
 *                 [--max-cycles N]
 */

#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>

#include "base/logging.hh"
#include "exec/memory.hh"
#include "proc/machine_config.hh"
#include "proc/processor.hh"
#include "program/encoding.hh"
#include "workloads/workload.hh"

using namespace tarantula;

namespace
{

void
usage()
{
    std::printf(
        "usage: tarantula_run [options]\n"
        "  --machine M     EV8, EV8+, T (default), T4, T10\n"
        "  --workload W    workload name (default dgemm); see --list\n"
        "  --list          list available workloads and exit\n"
        "  --stats FILE    write the full statistics tree to FILE\n"
        "  --no-pump       disable the stride-1 PUMP (Figure 9)\n"
        "  --save-program FILE  serialize the chosen program (binary)\n"
        "  --force-crbox   route strided accesses through the CR box\n"
        "  --max-cycles N  simulation safety bound\n");
}

proc::MachineConfig
machineByName(const std::string &name)
{
    if (name == "EV8")
        return proc::ev8Config();
    if (name == "EV8+")
        return proc::ev8PlusConfig();
    if (name == "T")
        return proc::tarantulaConfig();
    if (name == "T4")
        return proc::tarantula4Config();
    if (name == "T10")
        return proc::tarantula10Config();
    fatal("unknown machine '%s' (EV8, EV8+, T, T4, T10)",
          name.c_str());
}

void
listWorkloads()
{
    std::printf("%-14s %s\n", "name", "description");
    for (const auto &w : workloads::microkernelSuite())
        std::printf("%-14s %s\n", w.name.c_str(),
                    w.description.c_str());
    for (const auto &w : workloads::figureSuite())
        std::printf("%-14s %s\n", w.name.c_str(),
                    w.description.c_str());
    const auto naive = workloads::swim(false);
    std::printf("%-14s %s\n", naive.name.c_str(),
                naive.description.c_str());
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    std::string machine = "T";
    std::string workload = "dgemm";
    std::string stats_file;
    std::string save_program;
    bool no_pump = false;
    bool force_crbox = false;
    std::uint64_t max_cycles = 8ULL << 30;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto next = [&]() -> std::string {
            if (i + 1 >= argc)
                fatal("missing value for %s", arg.c_str());
            return argv[++i];
        };
        if (arg == "--machine") {
            machine = next();
        } else if (arg == "--workload") {
            workload = next();
        } else if (arg == "--stats") {
            stats_file = next();
        } else if (arg == "--save-program") {
            save_program = next();
        } else if (arg == "--no-pump") {
            no_pump = true;
        } else if (arg == "--force-crbox") {
            force_crbox = true;
        } else if (arg == "--max-cycles") {
            max_cycles = std::stoull(next());
        } else if (arg == "--list") {
            listWorkloads();
            return 0;
        } else if (arg == "--help" || arg == "-h") {
            usage();
            return 0;
        } else {
            usage();
            fatal("unknown option '%s'", arg.c_str());
        }
    }

    proc::MachineConfig cfg = machineByName(machine);
    cfg.vbox.slicer.pumpEnabled = !no_pump;
    cfg.vbox.slicer.forceCrBox = force_crbox;

    workloads::Workload w = workloads::byName(workload);
    exec::FunctionalMemory mem;
    w.init(mem);

    const auto &prog = cfg.hasVbox ? w.vectorProg : w.scalarProg;
    if (!save_program.empty()) {
        program::saveProgram(prog, save_program);
        std::printf("program:    %zu instructions written to %s\n",
                    prog.size(), save_program.c_str());
    }
    proc::Processor cpu(cfg, prog, mem);
    for (const auto &r : w.warmRanges) {
        for (std::uint64_t o = 0; o < r.bytes; o += CacheLineBytes)
            cpu.l2().warmLine(r.base + o);
    }

    const proc::RunResult r = cpu.run(max_cycles);
    const std::string err = w.check(mem);

    std::printf("workload:   %s (%s)\n", w.name.c_str(),
                w.description.c_str());
    std::printf("machine:    %s @ %.2f GHz (%s program)\n",
                cfg.name.c_str(), cfg.freqGhz,
                cfg.hasVbox ? "vector" : "scalar");
    std::printf("result:     %s\n",
                err.empty() ? "correct" : err.c_str());
    std::printf("cycles:     %llu (%.3f ms wall-clock at this "
                "frequency)\n",
                static_cast<unsigned long long>(r.cycles),
                r.seconds() * 1e3);
    std::printf("insts:      %llu\n",
                static_cast<unsigned long long>(r.insts));
    std::printf("ops/cycle:  %.2f (flops %.2f, mem %.2f, other "
                "%.2f)\n",
                r.opc(), r.fpc(), r.mpc(), r.otherPc());
    std::printf("mem raw:    %.1f MB (%.0f MB/s)\n",
                r.rawBytes / 1e6, r.rawBandwidthMBs());
    if (w.usefulBytes > 0)
        std::printf("streams BW: %.0f MB/s\n",
                    r.bandwidthMBs(w.usefulBytes));

    if (!stats_file.empty()) {
        std::ofstream out(stats_file);
        if (!out)
            fatal("cannot open '%s'", stats_file.c_str());
        cpu.stats().report(out);
        std::printf("stats:      written to %s\n", stats_file.c_str());
    }
    return err.empty() ? 0 : 1;
}
