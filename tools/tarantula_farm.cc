/**
 * @file
 * Farm orchestrator: declare a sweep in a shared directory, spawn N
 * tarantula_worker processes over it, watch them, and assemble the
 * final report (DESIGN.md §12).
 *
 *   tarantula_farm --dir DIR [--workers N] [sweep spec options]
 *                  [--json FILE] [--chaos] [--status] [--report]
 *
 * The sweep spec options mirror tarantula_batch (--machines,
 * --workloads, --cores, --no-pump, --force-crbox, --check,
 * --no-fast-forward, --deadlock-cycles, --max-cycles, --faults,
 * --sample-every, --sample-stats); the expanded job list is pinned
 * into DIR/sweep.json so every worker -- and every later restart of
 * the orchestrator -- executes the identical grid.
 *
 * The orchestrator is itself crash-tolerant plumbing, not a
 * coordinator: all coordination lives in the directory's lease files.
 * Killing and restarting tarantula_farm resumes the sweep; pointing a
 * plain `tarantula_batch --manifest DIR` at the directory finishes it
 * serially with byte-identical output.
 *
 * --chaos is the self-test mode: a seeded RNG periodically SIGKILLs a
 * random worker and spawns a replacement, proving the kill-anywhere
 * guarantee live. --status prints one dashboard snapshot; --report
 * assembles the report from an existing (complete) directory.
 *
 * Exit codes: 0 = sweep complete, every job ok; 1 = complete with
 * failures/timeouts; 2 = usage or environment error; 130 = interrupted.
 */

#include <algorithm>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <random>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <sys/wait.h>
#include <unistd.h>

#include "base/logging.hh"
#include "farm/spawn.hh"
#include "farm/status.hh"
#include "sim/sweep.hh"

using namespace tarantula;

namespace
{

volatile std::sig_atomic_t g_signals = 0;

void
onSignal(int)
{
    g_signals = g_signals + 1;  // no volatile ++ in C++20
    if (g_signals >= 2)
        ::_exit(130);
}

void
usage()
{
    std::printf(
        "usage: tarantula_farm --dir DIR [options]\n"
        "  --dir DIR        shared farm directory (required)\n"
        "  --workers N      worker processes to spawn (default 2)\n"
        "  --json FILE      write the final batch report there\n"
        "                   instead of stdout\n"
        "sweep spec (pinned into DIR/sweep.json on first run):\n"
        "  --machines LIST  comma-separated Table 3 names, or 'all'\n"
        "                   (default T)\n"
        "  --workloads LIST 'all', 'micro', 'figure', 'rivec', or a name list\n"
        "                   (default all); entries may be '+'-joined\n"
        "                   per-core placement lists\n"
        "  --cores LIST     comma-separated core counts (default 1)\n"
        "  --seeds LIST     comma-separated workload seeds (default\n"
        "                   0); parameterize the fuzz/fuzzs families\n"
        "  --vls LIST       comma-separated vector lengths (default\n"
        "                   0 = full VL; needs VL-agnostic workloads)\n"
        "  --vm-page-bits LIST  comma-separated log2 page sizes; each\n"
        "                   adds a VM grid dimension (default 0 = the\n"
        "                   flat-cost PALcode refill)\n"
        "  --vm-walk-levels N | --vm-asids N | --vm-switch-every N\n"
        "  --vm-shootdown-every N | --vm-ptes-uncached\n"
        "  --no-pump | --force-crbox | --check | --no-fast-forward\n"
        "  --no-ucache (reference decode-per-step interpreter)\n"
        "  --deadlock-cycles N | --max-cycles N | --faults SPEC\n"
        "  --sample-every N | --sample-stats PREFIXES\n"
        "worker tuning (forwarded to every spawned worker):\n"
        "  --worker-bin PATH  tarantula_worker executable (default:\n"
        "                   next to this binary)\n"
        "  --slice-cycles N | --checkpoint-every S\n"
        "  --lease-timeout S | --max-failures K\n"
        "  --max-crashes K | --backoff-base S | --backoff-cap S\n"
        "modes:\n"
        "  --chaos          self-test: SIGKILL a random worker every\n"
        "                   --chaos-interval seconds (default 0.5),\n"
        "                   respawning replacements, until the sweep\n"
        "                   completes\n"
        "  --chaos-seed N   chaos RNG seed (default 1)\n"
        "  --chaos-interval S\n"
        "  --status         print one dashboard snapshot and exit\n"
        "  --report         assemble the report from DIR and exit\n"
        "  --refresh S      dashboard refresh period (default 2)\n"
        "  --quiet          no dashboard on stderr\n"
        "  --verbose        pass --verbose to workers\n");
}

std::uint64_t
parseU64(const std::string &arg, const std::string &value)
{
    try {
        std::size_t pos = 0;
        const std::uint64_t v = std::stoull(value, &pos);
        if (pos != value.size())
            throw std::invalid_argument(value);
        return v;
    } catch (const std::exception &) {
        fatal("invalid number '%s' for %s", value.c_str(),
              arg.c_str());
    }
}

double
parseSeconds(const std::string &arg, const std::string &value)
{
    try {
        std::size_t pos = 0;
        const double v = std::stod(value, &pos);
        if (pos != value.size() || v < 0.0)
            throw std::invalid_argument(value);
        return v;
    } catch (const std::exception &) {
        fatal("invalid number '%s' for %s", value.c_str(),
              arg.c_str());
    }
}

int
reportExitCode(const farm::FarmStatus &st)
{
    return st.ok == st.total ? 0 : 1;
}

int
run(int argc, char **argv)
{
    std::string dir;
    std::string json_file;
    unsigned workers = 2;
    sim::SweepOptions sweep;
    farm::WorkerCommand worker_cmd;
    bool chaos = false;
    std::uint64_t chaos_seed = 1;
    double chaos_interval = 0.5;
    bool status_only = false;
    bool report_only = false;
    double refresh = 2.0;
    bool quiet = false;

    // Accept --opt=value alongside --opt value.
    std::vector<std::string> args;
    for (int i = 1; i < argc; ++i) {
        const std::string a = argv[i];
        const std::size_t eq = a.find('=');
        if (a.size() > 2 && a[0] == '-' && a[1] == '-' &&
            eq != std::string::npos) {
            args.push_back(a.substr(0, eq));
            args.push_back(a.substr(eq + 1));
        } else {
            args.push_back(a);
        }
    }

    for (std::size_t i = 0; i < args.size(); ++i) {
        const std::string arg = args[i];
        auto next = [&]() -> std::string {
            if (i + 1 >= args.size())
                fatal("missing value for %s", arg.c_str());
            return args[++i];
        };
        if (arg == "--dir") {
            dir = next();
        } else if (arg == "--workers") {
            workers = static_cast<unsigned>(parseU64(arg, next()));
        } else if (arg == "--json") {
            json_file = next();
        } else if (arg == "--machines") {
            sweep.machines = next();
        } else if (arg == "--workloads") {
            sweep.workloads = next();
        } else if (arg == "--cores") {
            sweep.cores = next();
        } else if (arg == "--seeds") {
            sweep.seeds = next();
        } else if (arg == "--vls") {
            sweep.vls = next();
        } else if (arg == "--vm-page-bits") {
            sweep.vmPageBits = next();
        } else if (arg == "--vm-walk-levels") {
            sweep.vmWalkLevels =
                static_cast<unsigned>(parseU64(arg, next()));
        } else if (arg == "--vm-asids") {
            sweep.vmAsids =
                static_cast<unsigned>(parseU64(arg, next()));
        } else if (arg == "--vm-switch-every") {
            sweep.vmSwitchEvery = parseU64(arg, next());
        } else if (arg == "--vm-shootdown-every") {
            sweep.vmShootdownEvery = parseU64(arg, next());
        } else if (arg == "--vm-ptes-uncached") {
            sweep.vmPtesUncached = true;
        } else if (arg == "--no-pump") {
            sweep.noPump = true;
        } else if (arg == "--force-crbox") {
            sweep.forceCrBox = true;
        } else if (arg == "--check") {
            sweep.check = true;
        } else if (arg == "--no-fast-forward") {
            sweep.fastForward = false;
        } else if (arg == "--no-ucache") {
            sweep.ucache = false;
        } else if (arg == "--deadlock-cycles") {
            sweep.deadlockCycles = parseU64(arg, next());
        } else if (arg == "--max-cycles") {
            sweep.maxCycles = parseU64(arg, next());
        } else if (arg == "--faults") {
            sweep.faults = next();
        } else if (arg == "--sample-every") {
            sweep.sampleEvery = parseU64(arg, next());
        } else if (arg == "--sample-stats") {
            sweep.sampleStats = next();
        } else if (arg == "--worker-bin") {
            worker_cmd.binPath = next();
        } else if (arg == "--slice-cycles") {
            worker_cmd.sliceCycles = parseU64(arg, next());
        } else if (arg == "--checkpoint-every") {
            worker_cmd.checkpointSeconds = parseSeconds(arg, next());
        } else if (arg == "--lease-timeout") {
            worker_cmd.leaseTimeoutSeconds =
                parseSeconds(arg, next());
        } else if (arg == "--max-failures") {
            worker_cmd.maxFailures =
                static_cast<unsigned>(parseU64(arg, next()));
        } else if (arg == "--max-crashes") {
            worker_cmd.maxCrashes =
                static_cast<unsigned>(parseU64(arg, next()));
        } else if (arg == "--backoff-base") {
            worker_cmd.backoffBaseSeconds =
                parseSeconds(arg, next());
        } else if (arg == "--backoff-cap") {
            worker_cmd.backoffCapSeconds = parseSeconds(arg, next());
        } else if (arg == "--chaos") {
            chaos = true;
        } else if (arg == "--chaos-seed") {
            chaos_seed = parseU64(arg, next());
        } else if (arg == "--chaos-interval") {
            chaos_interval = parseSeconds(arg, next());
        } else if (arg == "--status") {
            status_only = true;
        } else if (arg == "--report") {
            report_only = true;
        } else if (arg == "--refresh") {
            refresh = parseSeconds(arg, next());
        } else if (arg == "--quiet") {
            quiet = true;
        } else if (arg == "--verbose") {
            worker_cmd.verbose = true;
        } else if (arg == "--help" || arg == "-h") {
            usage();
            return 0;
        } else {
            usage();
            fatal("unknown option '%s'", arg.c_str());
        }
    }
    if (dir.empty()) {
        usage();
        fatal("--dir is required");
    }
    if (workers == 0)
        fatal("--workers needs at least 1");

    if (status_only) {
        const farm::FarmStatus st = farm::scanFarm(dir);
        farm::writeDashboard(std::cerr, st);
        return st.complete() ? reportExitCode(st) : 0;
    }
    if (report_only) {
        std::ostringstream report;
        if (!farm::writeFarmReport(report, dir, workers)) {
            std::fprintf(stderr,
                         "farm: sweep in %s is incomplete; no report\n",
                         dir.c_str());
            return 2;
        }
        if (json_file.empty()) {
            std::cout << report.str();
        } else {
            std::ofstream out(json_file);
            if (!out)
                fatal("cannot open '%s'", json_file.c_str());
            out << report.str();
        }
        return reportExitCode(farm::scanFarm(dir));
    }

    // Pin the sweep (idempotent across restarts; a conflicting sweep
    // in the same directory is refused).
    const std::vector<sim::Job> jobs =
        sim::declareSweep(dir, sim::buildSweep(sweep));
    std::fprintf(stderr, "farm: %zu jobs pinned in %s\n", jobs.size(),
                 dir.c_str());

    if (worker_cmd.binPath.empty()) {
        worker_cmd.binPath =
            farm::selfExeDir() + "/tarantula_worker";
    }
    worker_cmd.dir = dir;

    std::signal(SIGTERM, onSignal);
    std::signal(SIGINT, onSignal);

    unsigned next_worker = 0;
    std::vector<pid_t> pids;
    auto spawnOne = [&] {
        farm::WorkerCommand cmd = worker_cmd;
        cmd.name = "w" + std::to_string(++next_worker);
        const pid_t pid = farm::spawnWorker(cmd);
        pids.push_back(pid);
        if (!quiet) {
            std::fprintf(stderr, "farm: spawned %s (pid %d)\n",
                         cmd.name.c_str(), pid);
        }
    };
    for (unsigned i = 0; i < workers; ++i)
        spawnOne();

    std::mt19937_64 rng(chaos_seed);
    auto now = [] { return std::chrono::steady_clock::now(); };
    auto last_dash = now() - std::chrono::hours(1);
    auto last_chaos = now();
    bool draining = false;

    for (;;) {
        for (const auto &r : farm::reapExited(pids)) {
            if (quiet)
                continue;
            if (WIFSIGNALED(r.status)) {
                std::fprintf(stderr,
                             "farm: worker pid %d killed by signal "
                             "%d\n", r.pid, WTERMSIG(r.status));
            } else {
                std::fprintf(stderr,
                             "farm: worker pid %d exited %d\n",
                             r.pid, WEXITSTATUS(r.status));
            }
        }

        if (g_signals && !draining) {
            // Graceful shutdown: drain the workers (they park
            // in-flight jobs), then exit without a report; the
            // directory resumes later.
            draining = true;
            for (pid_t pid : pids)
                farm::drainWorker(pid);
            std::fprintf(stderr,
                         "farm: interrupted; draining %zu workers\n",
                         pids.size());
        }
        if (draining && pids.empty()) {
            std::fprintf(stderr,
                         "farm: drained; resume with the same "
                         "command line\n");
            return 130;
        }

        const farm::FarmStatus st = farm::scanFarm(dir);
        if (st.complete() && !draining)
            break;

        if (!draining) {
            if (chaos && !pids.empty() &&
                std::chrono::duration<double>(now() - last_chaos)
                        .count() >= chaos_interval) {
                last_chaos = now();
                const std::size_t victim = rng() % pids.size();
                if (!quiet) {
                    std::fprintf(stderr,
                                 "farm: chaos SIGKILL pid %d\n",
                                 pids[victim]);
                }
                farm::killWorker(pids[victim]);
                // Keep the fleet at strength; degraded operation is
                // tested by the window between kill and respawn.
                spawnOne();
            }
            // Liveness: the fleet must never die out with work left.
            if (pids.empty())
                spawnOne();
        }

        if (!quiet &&
            std::chrono::duration<double>(now() - last_dash)
                    .count() >= refresh) {
            last_dash = now();
            farm::writeDashboard(std::cerr, st);
        }
        std::this_thread::sleep_for(std::chrono::milliseconds(50));
    }

    // Sweep complete: workers exit on their own; collect them.
    while (!pids.empty()) {
        farm::reapExited(pids);
        std::this_thread::sleep_for(std::chrono::milliseconds(20));
    }

    const farm::FarmStatus st = farm::scanFarm(dir);
    if (!quiet)
        farm::writeDashboard(std::cerr, st);

    std::ostringstream report;
    if (!farm::writeFarmReport(report, dir, workers))
        fatal("farm: sweep complete but records missing");
    if (json_file.empty()) {
        std::cout << report.str();
    } else {
        std::ofstream out(json_file);
        if (!out)
            fatal("cannot open '%s'", json_file.c_str());
        out << report.str();
        std::fprintf(stderr, "farm: report written to %s\n",
                     json_file.c_str());
    }
    return reportExitCode(st);
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    try {
        return run(argc, argv);
    } catch (const FatalError &) {
        return 2; // fatal() already printed the message
    } catch (const std::exception &e) {
        std::fprintf(stderr, "error: %s\n", e.what());
        return 2;
    }
}
