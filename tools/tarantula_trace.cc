/**
 * @file
 * Trace summarizer: digest a Chrome trace-event JSON written by
 * `tarantula_run --trace` (or `tarantula_batch --trace-dir`) into the
 * two questions a first look always asks -- where did the cycles go,
 * and what stalled the most?
 *
 *   tarantula_trace FILE [--top N]
 *
 * Per component track it reports the event count and a busy%% (the
 * fraction of the track's active span covered by at least one event,
 * counting "X" spans by duration); across tracks it ranks event names
 * by total weight (span events weigh their duration, instants weigh
 * one cycle) -- the top of that table is the machine's dominant stall
 * or traffic source. See docs/TRACING.md for the full workflow.
 */

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "base/logging.hh"
#include "base/types.hh"
#include "trace/json_reader.hh"

using namespace tarantula;

namespace
{

void
usage()
{
    std::printf(
        "usage: tarantula_trace FILE [--top N]\n"
        "  FILE     Chrome trace-event JSON from tarantula_run "
        "--trace\n"
        "  --top N  rows in the event-name ranking (default 10)\n");
}

/** Accumulated view of one tid (= one component track). */
struct Track
{
    std::string name;           ///< from the thread_name metadata
    std::uint64_t events = 0;
    Cycle firstTs = ~Cycle{0};
    Cycle lastEnd = 0;
    /**
     * Merged-interval cursor for the busy-cycle union. Events arrive
     * ts-sorted per track (the sink sorts on export), so one pass
     * suffices: extend the open interval or close it and open a new
     * one.
     */
    Cycle openStart = 0;
    Cycle openEnd = 0;          ///< exclusive; 0 = no open interval
    std::uint64_t busyCycles = 0;

    void
    add(Cycle ts, Cycle dur)
    {
        ++events;
        firstTs = std::min(firstTs, ts);
        const Cycle end = ts + std::max<Cycle>(dur, 1);
        lastEnd = std::max(lastEnd, end);
        if (openEnd == 0) {
            openStart = ts;
            openEnd = end;
        } else if (ts <= openEnd) {
            openEnd = std::max(openEnd, end);
        } else {
            busyCycles += openEnd - openStart;
            openStart = ts;
            openEnd = end;
        }
    }

    std::uint64_t
    totalBusy() const
    {
        return busyCycles + (openEnd ? openEnd - openStart : 0);
    }

    Cycle
    span() const
    {
        return lastEnd > firstTs ? lastEnd - firstTs : 0;
    }
};

/** Per event name: how often, and how many cycles it accounts for. */
struct NameWeight
{
    std::uint64_t count = 0;
    std::uint64_t weight = 0;   ///< instants 1 cycle, spans dur
};

int
run(int argc, char **argv)
{
    std::string file;
    std::size_t top = 10;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--top") {
            if (i + 1 >= argc)
                fatal("missing value for --top");
            top = static_cast<std::size_t>(std::stoull(argv[++i]));
        } else if (arg == "--help" || arg == "-h") {
            usage();
            return 0;
        } else if (!arg.empty() && arg[0] == '-') {
            usage();
            fatal("unknown option '%s'", arg.c_str());
        } else if (file.empty()) {
            file = arg;
        } else {
            usage();
            fatal("more than one trace file given");
        }
    }
    if (file.empty()) {
        usage();
        fatal("no trace file given");
    }

    std::ifstream in(file);
    if (!in)
        fatal("cannot open '%s'", file.c_str());
    std::ostringstream buf;
    buf << in.rdbuf();

    const trace::JsonValue doc = trace::parseJson(buf.str());
    if (!doc.isObject())
        fatal("'%s': top-level JSON value is not an object",
              file.c_str());
    const trace::JsonValue *events = doc.find("traceEvents");
    if (!events || !events->isArray())
        fatal("'%s': no traceEvents array; not a Chrome trace",
              file.c_str());

    std::map<std::uint64_t, Track> tracks;
    std::map<std::string, NameWeight> names;
    for (const trace::JsonValue &e : events->array) {
        if (!e.isObject())
            continue;
        const trace::JsonValue *ph = e.find("ph");
        const trace::JsonValue *name = e.find("name");
        const trace::JsonValue *tid = e.find("tid");
        if (!ph || !ph->isString() || !name || !name->isString() ||
            !tid) {
            continue;
        }
        if (ph->str == "M") {
            if (name->str == "thread_name") {
                const trace::JsonValue *args = e.find("args");
                const trace::JsonValue *tn =
                    args ? args->find("name") : nullptr;
                if (tn && tn->isString())
                    tracks[tid->asU64()].name = tn->str;
            }
            continue;
        }
        const trace::JsonValue *ts = e.find("ts");
        if (!ts)
            continue;
        const trace::JsonValue *dur = e.find("dur");
        const Cycle d = dur ? dur->asU64() : 0;
        tracks[tid->asU64()].add(ts->asU64(), d);
        NameWeight &nw = names[name->str];
        ++nw.count;
        nw.weight += std::max<std::uint64_t>(d, 1);
    }

    const trace::JsonValue *dropped = doc.find("droppedEvents");
    std::uint64_t total_events = 0;
    for (const auto &[tid, t] : tracks)
        total_events += t.events;

    std::printf("%s: %llu events on %zu tracks",
                file.c_str(),
                static_cast<unsigned long long>(total_events),
                tracks.size());
    if (dropped && dropped->asU64())
        std::printf(" (%llu dropped at the event cap)",
                    static_cast<unsigned long long>(dropped->asU64()));
    std::printf("\n\n");

    std::printf("%-10s %12s %14s %14s %7s\n", "track", "events",
                "first..last", "busy cycles", "busy%");
    for (const auto &[tid, t] : tracks) {
        if (t.events == 0)
            continue;       // metadata-only tid
        const double pct =
            t.span() ? 100.0 * static_cast<double>(t.totalBusy()) /
                           static_cast<double>(t.span())
                     : 0.0;
        char range[32];
        std::snprintf(range, sizeof(range), "%llu..%llu",
                      static_cast<unsigned long long>(t.firstTs),
                      static_cast<unsigned long long>(t.lastEnd));
        std::printf("%-10s %12llu %14s %14llu %6.1f%%\n",
                    t.name.empty() ? "?" : t.name.c_str(),
                    static_cast<unsigned long long>(t.events), range,
                    static_cast<unsigned long long>(t.totalBusy()),
                    pct);
    }

    std::vector<std::pair<std::string, NameWeight>> ranked(
        names.begin(), names.end());
    std::sort(ranked.begin(), ranked.end(),
              [](const auto &x, const auto &y) {
                  return x.second.weight > y.second.weight;
              });

    std::printf("\ntop event names by cycle weight:\n");
    std::printf("%-24s %12s %14s\n", "name", "count", "cycle weight");
    for (std::size_t i = 0; i < ranked.size() && i < top; ++i) {
        std::printf("%-24s %12llu %14llu\n", ranked[i].first.c_str(),
                    static_cast<unsigned long long>(
                        ranked[i].second.count),
                    static_cast<unsigned long long>(
                        ranked[i].second.weight));
    }
    return 0;
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    try {
        return run(argc, argv);
    } catch (const FatalError &) {
        return 2; // fatal() already printed the message
    } catch (const trace::JsonParseError &e) {
        std::fprintf(stderr, "error: %s\n", e.what());
        return 2;
    } catch (const std::exception &e) {
        std::fprintf(stderr, "error: %s\n", e.what());
        return 2;
    }
}
