/**
 * @file
 * Differential-fuzz campaign driver (DESIGN.md §13): expand a seed
 * range x variant grid x fault-plan set x VL set into three-mode
 * campaign points, run them through SimFarm threads or
 * tarantula_worker processes, and write the
 * tarantula.fuzzcampaign.v1 divergence report.
 *
 *   tarantula_fuzz --dir DIR [--seeds A..B] [--variants LIST]
 *                  [--fault-plans SPEC;SPEC...] [--vls LIST]
 *                  [--max-cycles N] [--deadlock-cycles N]
 *                  [--jobs N | --workers N] [--json FILE]
 *                  [--quiet] [--list]
 *
 * Every point runs the same generated program on the same machine
 * through three engines -- stepped, fast-forwarded, and
 * fast-forwarded with a mid-run snapshot/teardown/restore -- and the
 * report flags any disagreement (an engine bug) and any agreed-on
 * failure (the shape a corruption fault plan produces when its
 * integrity checker fires). Records land in the ordinary
 * BatchManifest under --dir, so an interrupted campaign resumes by
 * rerunning the same command, and a serial rerun writes a
 * byte-identical report.
 *
 * Exit status: 0 = campaign clean, 1 = divergences found (see the
 * report), 2 = usage or setup error.
 */

#include <chrono>
#include <csignal>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "base/logging.hh"
#include "farm/spawn.hh"
#include "farm/status.hh"
#include "fuzzgen/fuzzgen.hh"
#include "sim/batch_manifest.hh"
#include "sim/fuzz_campaign.hh"
#include "sim/result_sink.hh"
#include "sim/sim_farm.hh"
#include "sim/sweep.hh"

using namespace tarantula;

namespace
{

volatile std::sig_atomic_t g_signals = 0;
sim::SimFarm *g_farm = nullptr;

void
onSignal(int)
{
    g_signals = g_signals + 1;  // no volatile ++ in C++20
    if (g_signals >= 2)
        ::_exit(130);
    if (g_farm)
        g_farm->requestStop();
}

void
usage()
{
    std::printf(
        "usage: tarantula_fuzz --dir DIR [options]\n"
        "  --dir DIR        campaign directory: job records, the\n"
        "                   pinned sweep and forensic traces live\n"
        "                   here; rerun the same command to resume\n"
        "  --seeds A..B     generator seed range, inclusive (also\n"
        "                   accepts a single seed; default 1..8)\n"
        "  --variants LIST  comma-separated fuzz variants: T, T4,\n"
        "                   nopump, crbox, or any Table 3 machine\n"
        "                   (default T,T4,nopump,crbox)\n"
        "  --fault-plans L  semicolon-separated FaultPlan specs\n"
        "                   (e.g. 'drop_fill@3000;random:7@20000');\n"
        "                   the clean plan always sweeps first\n"
        "  --vls LIST       comma-separated VL knob values; 0 = the\n"
        "                   full machine VL (default 0)\n"
        "  --vm-page-bits LIST  comma-separated log2 page sizes; each\n"
        "                   adds a VM grid dimension (default 0 = the\n"
        "                   flat-cost PALcode refill); all three\n"
        "                   engine modes carry the same VM knobs\n"
        "  --vm-asids N | --vm-switch-every N | --vm-shootdown-every N\n"
        "                   VM companion knobs on vm-page-bits points\n"
        "  --max-cycles N   per-job simulated-cycle budget\n"
        "  --deadlock-cycles N  no-retirement watchdog on fault\n"
        "                   points (default 500000)\n"
        "  --jobs N         in-process worker threads (default: host\n"
        "                   threads)\n"
        "  --workers N      run through N tarantula_worker processes\n"
        "                   instead of in-process threads\n"
        "  --worker-bin P   tarantula_worker executable (default:\n"
        "                   next to this binary)\n"
        "  --json FILE      write the campaign report there instead\n"
        "                   of stdout\n"
        "  --quiet          no per-job progress on stderr\n"
        "  --list           list fuzz variants, then exit\n");
}

void
listEverything()
{
    std::printf("fuzz variants:\n");
    for (const auto &name : fuzzgen::variantNames()) {
        const fuzzgen::Variant v = fuzzgen::variantByName(name);
        std::printf("  %-8s machine %s%s%s\n", name.c_str(),
                    v.machine.c_str(), v.noPump ? ", pump off" : "",
                    v.forceCrBox ? ", CR box forced" : "");
    }
    std::printf("(any Table 3 machine name is also a variant; scalar\n"
                " machines fuzz the scalar generator)\n"
                "workload families: fuzz (vector), fuzzs (scalar) --\n"
                " also sweepable via tarantula_batch --workloads fuzz\n"
                " --seeds LIST --vls LIST\n");
}

std::uint64_t
parseU64(const std::string &arg, const std::string &value)
{
    try {
        std::size_t pos = 0;
        const std::uint64_t v = std::stoull(value, &pos);
        if (pos != value.size())
            throw std::invalid_argument(value);
        return v;
    } catch (const std::exception &) {
        fatal("invalid number '%s' for %s", value.c_str(),
              arg.c_str());
    }
}

/** "A..B" or "N" -> [lo, hi] inclusive. */
void
parseSeedRange(const std::string &spec, std::uint64_t &lo,
               std::uint64_t &hi)
{
    const std::size_t dots = spec.find("..");
    if (dots == std::string::npos) {
        lo = hi = parseU64("--seeds", spec);
        return;
    }
    lo = parseU64("--seeds", spec.substr(0, dots));
    hi = parseU64("--seeds", spec.substr(dots + 2));
    if (hi < lo)
        fatal("--seeds range '%s' is empty", spec.c_str());
}

int
run(int argc, char **argv)
{
    sim::CampaignOptions opt;
    std::string dir;
    std::string json_file;
    unsigned jobs = 0;
    unsigned workers = 0;
    std::string worker_bin;
    bool quiet = false;

    std::vector<std::string> args;
    for (int i = 1; i < argc; ++i) {
        const std::string a = argv[i];
        const std::size_t eq = a.find('=');
        if (a.size() > 2 && a[0] == '-' && a[1] == '-' &&
            eq != std::string::npos) {
            args.push_back(a.substr(0, eq));
            args.push_back(a.substr(eq + 1));
        } else {
            args.push_back(a);
        }
    }

    for (std::size_t i = 0; i < args.size(); ++i) {
        const std::string arg = args[i];
        auto next = [&]() -> std::string {
            if (i + 1 >= args.size())
                fatal("missing value for %s", arg.c_str());
            return args[++i];
        };
        if (arg == "--dir") {
            dir = next();
        } else if (arg == "--seeds") {
            parseSeedRange(next(), opt.seedLo, opt.seedHi);
        } else if (arg == "--variants") {
            opt.variants = next();
        } else if (arg == "--fault-plans") {
            opt.faultPlans = next();
        } else if (arg == "--vls") {
            opt.vls = next();
        } else if (arg == "--vm-page-bits") {
            opt.vmPageBits = next();
        } else if (arg == "--vm-asids") {
            opt.vmAsids =
                static_cast<unsigned>(parseU64(arg, next()));
        } else if (arg == "--vm-switch-every") {
            opt.vmSwitchEvery = parseU64(arg, next());
        } else if (arg == "--vm-shootdown-every") {
            opt.vmShootdownEvery = parseU64(arg, next());
        } else if (arg == "--max-cycles") {
            opt.maxCycles = parseU64(arg, next());
        } else if (arg == "--deadlock-cycles") {
            opt.deadlockCycles = parseU64(arg, next());
        } else if (arg == "--jobs") {
            jobs = static_cast<unsigned>(parseU64(arg, next()));
        } else if (arg == "--workers") {
            workers = static_cast<unsigned>(parseU64(arg, next()));
        } else if (arg == "--worker-bin") {
            worker_bin = next();
        } else if (arg == "--json") {
            json_file = next();
        } else if (arg == "--quiet") {
            quiet = true;
        } else if (arg == "--list") {
            listEverything();
            return 0;
        } else if (arg == "--help" || arg == "-h") {
            usage();
            return 0;
        } else {
            usage();
            fatal("unknown option '%s'", arg.c_str());
        }
    }
    if (dir.empty()) {
        usage();
        fatal("--dir DIR is required (records and the report's "
              "forensic traces live there)");
    }

    std::vector<sim::Job> grid;
    try {
        grid = sim::buildCampaign(opt);
    } catch (const std::invalid_argument &e) {
        fatal("%s", e.what());
    }

    std::signal(SIGTERM, onSignal);
    std::signal(SIGINT, onSignal);

    if (workers > 0) {
        // Distributed execution over the campaign directory: pin the
        // job list, let tarantula_worker processes lease and run it.
        std::vector<sim::Job> pinned;
        try {
            pinned = sim::declareSweep(dir, grid);
        } catch (const std::invalid_argument &e) {
            fatal("%s", e.what());
        }
        farm::WorkerCommand cmd;
        cmd.binPath = worker_bin.empty()
            ? farm::selfExeDir() + "/tarantula_worker"
            : worker_bin;
        cmd.dir = dir;
        unsigned next_name = 0;
        std::vector<pid_t> pids;
        auto spawnOne = [&] {
            cmd.name = "w" + std::to_string(++next_name);
            pids.push_back(farm::spawnWorker(cmd));
        };
        for (unsigned i = 0; i < workers; ++i)
            spawnOne();
        std::fprintf(stderr,
                     "fuzz: %zu campaign jobs (%zu points) through "
                     "%u worker processes over %s\n",
                     pinned.size(), pinned.size() / 3, workers,
                     dir.c_str());
        bool draining = false;
        for (;;) {
            farm::reapExited(pids);
            if (g_signals && !draining) {
                draining = true;
                for (pid_t pid : pids)
                    farm::drainWorker(pid);
                std::fprintf(stderr,
                             "fuzz: interrupted; draining workers "
                             "(rerun to resume)\n");
            }
            if (draining) {
                if (pids.empty())
                    return 130;
            } else if (farm::scanFarm(dir).complete()) {
                break;
            } else if (pids.empty()) {
                spawnOne();
            }
            std::this_thread::sleep_for(
                std::chrono::milliseconds(50));
        }
        while (!pids.empty()) {
            farm::reapExited(pids);
            std::this_thread::sleep_for(
                std::chrono::milliseconds(20));
        }
    } else {
        // In-process execution with manifest resume: jobs already
        // recorded under --dir are never re-run.
        const sim::BatchManifest manifest(dir);
        sim::SimFarm farm(jobs);
        g_farm = &farm;
        std::size_t skipped = 0;
        sim::BatchRecord ignored;
        for (const auto &job : grid) {
            if (manifest.load(job, ignored))
                ++skipped;
            else
                farm.submit(job);
        }
        std::fprintf(stderr,
                     "fuzz: %zu campaign jobs (%zu points); %zu "
                     "already recorded, running %zu on %u threads\n",
                     grid.size(), grid.size() / 3, skipped,
                     farm.pending(), farm.threads());
        auto progress = [&](const sim::JobResult &r, std::size_t done,
                            std::size_t total) {
            manifest.store(r.job, sim::toBatchRecord(r, true));
            if (quiet)
                return;
            std::fprintf(stderr, "[%3zu/%zu] %-9s %s seed %llu\n",
                         done, total, sim::toString(r.status),
                         sim::BatchManifest::jobKey(r.job).c_str(),
                         static_cast<unsigned long long>(r.job.seed));
        };
        farm.run(progress);
        g_farm = nullptr;
        if (g_signals) {
            std::fprintf(stderr,
                         "fuzz: interrupted; completed records are "
                         "in %s; rerun the same command to resume\n",
                         dir.c_str());
            return 130;
        }
    }

    // Analysis: load every record back in campaign order and write
    // the divergence report. This pass is deterministic -- a serial
    // rerun over the same records produces byte-identical output.
    std::ostringstream report;
    std::size_t divergences = 0;
    try {
        divergences = sim::writeCampaignReport(report, dir, opt);
    } catch (const std::invalid_argument &e) {
        fatal("%s", e.what());
    }
    if (json_file.empty()) {
        std::cout << report.str();
    } else {
        std::ofstream out(json_file);
        if (!out)
            fatal("cannot open '%s'", json_file.c_str());
        out << report.str();
        std::fprintf(stderr, "fuzz: report written to %s\n",
                     json_file.c_str());
    }
    std::fprintf(stderr, "fuzz: %zu points, %zu divergences\n",
                 grid.size() / 3, divergences);
    return divergences == 0 ? 0 : 1;
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    try {
        return run(argc, argv);
    } catch (const FatalError &) {
        return 2; // fatal() already printed the message
    } catch (const std::exception &e) {
        std::fprintf(stderr, "error: %s\n", e.what());
        return 2;
    }
}
