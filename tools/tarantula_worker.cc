/**
 * @file
 * One farm worker process (DESIGN.md §12).
 *
 *   tarantula_worker --dir DIR [--name N] [--slice-cycles N]
 *                    [--lease-timeout S] [--max-failures K]
 *                    [--max-crashes K] [--backoff-base S]
 *                    [--backoff-cap S] [--verbose]
 *
 * Claims jobs from DIR's pinned sweep via atomic lease files, runs
 * them in heartbeat-renewing slices, and publishes deterministic
 * records through the shared BatchManifest. Any number of workers may
 * point at the same directory, from any number of processes or hosts
 * sharing it; any of them may be SIGKILLed at any instant.
 *
 * SIGTERM or SIGINT drains cooperatively: the in-flight job is
 * parked as a snapshot for another worker to adopt, the lease is
 * released, and the process exits 3. A second signal force-exits
 * (the lease then goes stale and is reclaimed -- the path a SIGKILL
 * takes from the start).
 *
 * Exit codes: 0 = the whole sweep has stored records; 3 = drained by
 * signal; 2 = bad usage or a broken farm directory.
 */

#include <csignal>
#include <cstdio>
#include <string>

#include <unistd.h>

#include "base/fsutil.hh"
#include "base/logging.hh"
#include "farm/worker.hh"

using namespace tarantula;

namespace
{

volatile std::sig_atomic_t g_signals = 0;

void
onSignal(int)
{
    g_signals = g_signals + 1;  // no volatile ++ in C++20
    if (g_signals >= 2)
        ::_exit(130);
}

void
usage()
{
    std::printf(
        "usage: tarantula_worker --dir DIR [options]\n"
        "  --dir DIR          the farm directory (required); must\n"
        "                     hold a sweep.json (tarantula_farm or\n"
        "                     tarantula_batch --workers writes one)\n"
        "  --name N           owner stamp in leases (default\n"
        "                     worker<pid>)\n"
        "  --slice-cycles N   cycles per heartbeat/drain poll slice\n"
        "                     (default 4194304)\n"
        "  --checkpoint-every S  park a self-checkpoint of the\n"
        "                     running job every S seconds so a kill\n"
        "                     loses at most S seconds of progress\n"
        "                     (default 5; 0 disables)\n"
        "  --lease-timeout S  heartbeat age before a lease is\n"
        "                     presumed orphaned (default 10)\n"
        "  --max-failures K   failed attempts before quarantine\n"
        "                     (default 3)\n"
        "  --max-crashes K    lease reclaims before quarantine\n"
        "                     (default 3)\n"
        "  --backoff-base S   first retry delay (default 0.25)\n"
        "  --backoff-cap S    retry delay ceiling (default 10)\n"
        "  --verbose          per-job progress lines on stderr\n");
}

double
parseSeconds(const std::string &arg, const std::string &value)
{
    try {
        std::size_t pos = 0;
        const double v = std::stod(value, &pos);
        if (pos != value.size() || v < 0.0)
            throw std::invalid_argument(value);
        return v;
    } catch (const std::exception &) {
        fatal("invalid number '%s' for %s", value.c_str(),
              arg.c_str());
    }
}

std::uint64_t
parseU64(const std::string &arg, const std::string &value)
{
    try {
        std::size_t pos = 0;
        const std::uint64_t v = std::stoull(value, &pos);
        if (pos != value.size())
            throw std::invalid_argument(value);
        return v;
    } catch (const std::exception &) {
        fatal("invalid number '%s' for %s", value.c_str(),
              arg.c_str());
    }
}

int
run(int argc, char **argv)
{
    farm::WorkerOptions options;
    bool verbose = false;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto next = [&]() -> std::string {
            if (i + 1 >= argc)
                fatal("missing value for %s", arg.c_str());
            return argv[++i];
        };
        if (arg == "--dir") {
            options.dir = next();
        } else if (arg == "--name") {
            options.name = next();
        } else if (arg == "--slice-cycles") {
            options.sliceCycles = parseU64(arg, next());
        } else if (arg == "--checkpoint-every") {
            options.checkpointSeconds = parseSeconds(arg, next());
        } else if (arg == "--lease-timeout") {
            options.leaseTimeoutSeconds = parseSeconds(arg, next());
        } else if (arg == "--max-failures") {
            options.maxFailures =
                static_cast<unsigned>(parseU64(arg, next()));
        } else if (arg == "--max-crashes") {
            options.maxCrashes =
                static_cast<unsigned>(parseU64(arg, next()));
        } else if (arg == "--backoff-base") {
            options.backoffBaseSeconds = parseSeconds(arg, next());
        } else if (arg == "--backoff-cap") {
            options.backoffCapSeconds = parseSeconds(arg, next());
        } else if (arg == "--verbose") {
            verbose = true;
        } else if (arg == "--help" || arg == "-h") {
            usage();
            return 0;
        } else {
            usage();
            fatal("unknown option '%s'", arg.c_str());
        }
    }
    if (options.dir.empty()) {
        usage();
        fatal("--dir is required");
    }

    std::signal(SIGTERM, onSignal);
    std::signal(SIGINT, onSignal);
    options.stopRequested = [] { return g_signals != 0; };
    if (verbose) {
        const std::string tag = options.name.empty()
            ? "worker" + std::to_string(::getpid())
            : options.name;
        options.log = [tag](const std::string &line) {
            std::fprintf(stderr, "%s: %s\n", tag.c_str(),
                         line.c_str());
        };
    }

    const farm::WorkerExit why = farm::runWorker(options);
    if (why == farm::WorkerExit::Drained) {
        std::fprintf(stderr, "worker: drained by signal\n");
        return 3;
    }
    return 0;
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    try {
        return run(argc, argv);
    } catch (const FatalError &) {
        return 2; // fatal() already printed the message
    } catch (const std::exception &e) {
        std::fprintf(stderr, "error: %s\n", e.what());
        return 2;
    }
}
