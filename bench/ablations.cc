/**
 * @file
 * Design-choice ablations beyond the paper's own figures, for the
 * decisions DESIGN.md calls out:
 *
 *  1. FMAC extension (section 5's what-if): a compute-bound kernel
 *     with fused multiply-accumulate versus separate mul+add.
 *  2. Conflict-free address reordering versus routing strided
 *     accesses through the CR box (what the 2.1 KB ROM buys).
 *  3. MAF replay-threshold sensitivity under a thrashing L2 (the
 *     panic-mode livelock guard).
 *  4. Vector TLB PALcode refill policy (missed lanes vs all lanes)
 *     on a gather sweeping many 512 MB pages.
 */

#include <cstdio>

#include <vector>

#include "base/random.hh"
#include "bench/bench_util.hh"
#include "program/assembler.hh"

using namespace tarantula;
using namespace tarantula::bench;
using namespace tarantula::program;

namespace
{

/** Compute-bound: four independent accumulation chains in registers. */
proc::RunResult
runComputeKernel(bool fmac)
{
    Assembler a;
    Label loop = a.newLabel();
    a.movi(R(3), 4000);
    a.fconst(F(1), 1.0000001, R(9));
    a.setvl(128);
    a.bind(loop);
    for (unsigned c = 0; c < 4; ++c) {
        const auto acc = V(1 + 2 * c);
        const auto src = V(2 + 2 * c);
        if (fmac) {
            a.vfmact(acc, src, F(1));
        } else {
            a.vmult(V(20 + c), src, F(1));
            a.vaddt(acc, acc, V(20 + c));
        }
    }
    a.subq(R(3), R(3), 1);
    a.bgt(R(3), loop);
    a.halt();
    Program p = a.finalize();
    exec::FunctionalMemory mem;
    proc::Processor pr(proc::tarantulaConfig(), p, mem);
    return pr.run(1ULL << 30);
}

void
fmacAblation()
{
    std::printf("\n[1] FMAC extension (section 5 what-if), "
                "compute-bound kernel\n");
    const auto base = runComputeKernel(false);
    const auto fmac = runComputeKernel(true);
    std::printf("    mul+add: %8llu cycles, %6.2f flops/cycle\n",
                static_cast<unsigned long long>(base.cycles),
                base.fpc());
    std::printf("    FMAC:    %8llu cycles, %6.2f flops/cycle "
                "(%.2fx fewer cycles; paper: ~2x peak for very\n"
                "    little extra power)\n",
                static_cast<unsigned long long>(fmac.cycles),
                fmac.fpc(),
                static_cast<double>(base.cycles) / fmac.cycles);
}

void
reorderAblation()
{
    std::printf("\n[2] Conflict-free reordering vs CR box for strided "
                "accesses\n");
    for (const char *name : {"swim_naive", "dgemm"}) {
        const auto w = workloads::byName(name);
        const auto with = runOn(proc::tarantulaConfig(), w);
        auto cfg = proc::tarantulaConfig();
        cfg.vbox.slicer.forceCrBox = true;
        cfg.name = "T-crbox";
        const auto without = runOn(cfg, w);
        std::printf("    %-12s reorder %8llu cyc, CR-box-only %8llu "
                    "cyc -> %.2fx slower\n",
                    name, static_cast<unsigned long long>(with.cycles),
                    static_cast<unsigned long long>(without.cycles),
                    static_cast<double>(without.cycles) / with.cycles);
    }
}

void
paddingAblation()
{
    std::printf("\n[2b] Radix-sort padding trick: odd chunk count "
                "(reorderable key stride)\n     vs power-of-two "
                "(self-conflicting, CR box)\n");
    const auto tiled = runOn(proc::tarantulaConfig(),
                             workloads::byName("ccradix"));
    const auto naive = runOn(proc::tarantulaConfig(),
                             workloads::byName("radix"));
    std::printf("    ccradix (padded) %8llu cyc, radix (naive) %8llu "
                "cyc -> %.2fx slower\n",
                static_cast<unsigned long long>(tiled.cycles),
                static_cast<unsigned long long>(naive.cycles),
                static_cast<double>(naive.cycles) / tiled.cycles);
}

void
mafThresholdSweep()
{
    std::printf("\n[3] MAF replay-threshold sweep under a thrashing "
                "L2 (256 KB)\n");
    const auto w = workloads::byName("rndmemscale");
    for (unsigned thr : {0u, 2u, 8u, 64u}) {
        auto cfg = proc::tarantulaConfig();
        cfg.l2.sizeBytes = 256 << 10;
        cfg.l2.retryThreshold = thr;
        cfg.name = "T-thr";

        exec::FunctionalMemory mem;
        w.init(mem);
        proc::Processor p(cfg, w.vectorProg, mem);
        const auto r = p.run(8ULL << 30);
        const std::string err = w.check(mem);
        if (!err.empty())
            fatal("maf sweep: wrong result: %s", err.c_str());
        std::printf("    threshold %2u: %8llu cycles, %6llu replays, "
                    "%4llu panics\n",
                    thr, static_cast<unsigned long long>(r.cycles),
                    static_cast<unsigned long long>(
                        p.l2().sliceReplays()),
                    static_cast<unsigned long long>(
                        p.l2().panicEntries()));
    }
}

/**
 * Gather whose 128 offsets sweep @p pages distinct 512 MB pages in a
 * rotating pattern, so different lanes keep needing translations the
 * missed-lanes policy never prefetched.
 */
proc::RunResult
runPagedGather(tlb::RefillPolicy policy, unsigned pages)
{
    constexpr Addr IdxBase = 0x10000;
    Assembler a;
    Label loop = a.newLabel();
    a.movi(R(1), 0);                    // gather base
    a.movi(R(2), IdxBase);
    a.movi(R(3), 64);                   // iterations
    a.setvl(128);
    a.setvs(8);
    a.bind(loop);
    a.vldq(V(1), R(2));
    a.vgathq(V(2), V(1), R(1));
    a.addq(R(2), R(2), 1024);
    a.subq(R(3), R(3), 1);
    a.bgt(R(3), loop);
    a.halt();
    Program p = a.finalize();

    exec::FunctionalMemory mem;
    Random rng(0x77);
    std::vector<std::uint64_t> idx(64 * 128);
    for (std::size_t i = 0; i < idx.size(); ++i) {
        const std::uint64_t page = rng.below(pages);
        idx[i] = (page << 29) + 0x400000 + rng.below(512) * 8;
    }
    mem.write(IdxBase, idx.data(), idx.size() * 8);

    auto cfg = proc::tarantulaConfig();
    cfg.vbox.refill = policy;
    cfg.name = "T-tlb";
    proc::Processor pr(cfg, p, mem);
    return pr.run(1ULL << 30);
}

void
tlbPolicyAblation()
{
    std::printf("\n[4] Vector TLB PALcode refill policy, gather over "
                "48 distinct 512 MB pages\n");
    for (auto policy : {tlb::RefillPolicy::MissedLanesOnly,
                        tlb::RefillPolicy::AllLanes}) {
        const auto r = runPagedGather(policy, 48);
        std::printf("    %-16s %8llu cycles\n",
                    policy == tlb::RefillPolicy::MissedLanesOnly
                        ? "missed-lanes" : "all-lanes",
                    static_cast<unsigned long long>(r.cycles));
    }
}

} // anonymous namespace

int
main()
{
    std::printf("Design-choice ablations (beyond the paper's own "
                "figures)\n");
    fmacAblation();
    reorderAblation();
    paddingAblation();
    mafThresholdSweep();
    tlbPolicyAblation();
    return 0;
}
