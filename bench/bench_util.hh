/**
 * @file
 * Shared helpers for the paper-reproduction bench binaries: run a
 * workload on a machine (with L2 warmup and result checking) and
 * print aligned tables.
 */

#ifndef TARANTULA_BENCH_BENCH_UTIL_HH
#define TARANTULA_BENCH_BENCH_UTIL_HH

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "base/logging.hh"
#include "exec/memory.hh"
#include "proc/machine_config.hh"
#include "proc/processor.hh"
#include "workloads/workload.hh"

namespace tarantula::bench
{

/** Run @p w on @p cfg; verifies the result and returns the metrics. */
inline proc::RunResult
runOn(const proc::MachineConfig &cfg, const workloads::Workload &w,
      std::uint64_t max_cycles = 8ULL << 30)
{
    exec::FunctionalMemory mem;
    w.init(mem);
    const auto &prog = cfg.hasVbox ? w.vectorProg : w.scalarProg;
    proc::Processor p(cfg, prog, mem);
    for (const auto &r : w.warmRanges) {
        for (std::uint64_t o = 0; o < r.bytes; o += CacheLineBytes)
            p.l2().warmLine(r.base + o);
    }
    auto res = p.run(max_cycles);
    const std::string err = w.check(mem);
    if (!err.empty())
        fatal("%s on %s: wrong result: %s", w.name.c_str(),
              cfg.name.c_str(), err.c_str());
    return res;
}

/**
 * Reduced-size smoke mode for CI: TARANTULA_BENCH_SMOKE=1 in the
 * environment or --smoke on the command line. Figure drivers shrink
 * their sweep so the whole bench suite builds *and runs* on every
 * change instead of bitrotting unbuilt.
 */
inline bool
smokeMode(int argc = 0, char **argv = nullptr)
{
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--smoke") == 0)
            return true;
    }
    const char *env = std::getenv("TARANTULA_BENCH_SMOKE");
    return env && *env && *env != '0';
}

/** Print a horizontal rule sized for an n-column table. */
inline void
rule(unsigned width)
{
    for (unsigned i = 0; i < width; ++i)
        std::putchar('-');
    std::putchar('\n');
}

} // namespace tarantula::bench

#endif // TARANTULA_BENCH_BENCH_UTIL_HH
