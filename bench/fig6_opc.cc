/**
 * @file
 * Reproduces Figure 6: sustained operations per cycle on Tarantula for
 * every suite benchmark, broken into flops per cycle (FPC), memory
 * operations per cycle (MPC) and other (integer/scalar).
 */

#include <cstdio>
#include <vector>

#include "bench/bench_util.hh"

using namespace tarantula;
using namespace tarantula::bench;

int
main(int argc, char **argv)
{
    const bool smoke = smokeMode(argc, argv);
    std::printf("Figure 6: operations per cycle sustained on "
                "Tarantula%s\n", smoke ? " (smoke subset)" : "");
    std::printf("Paper shape: most benchmarks > 10 OPC, several > 20; "
                "gather/scatter codes\n");
    std::printf("(sparse MxV, radix sort) lowest; linpack100 well "
                "below linpackTPP.\n\n");
    std::printf("%-12s %8s %8s %8s %8s   %s\n", "benchmark", "OPC",
                "FPC", "MPC", "Other", "bar");
    rule(76);

    const auto cfg = proc::tarantulaConfig();
    auto suite = workloads::figureSuite();
    if (smoke) {
        std::vector<workloads::Workload> subset;
        for (const auto &w : suite) {
            if (w.name == "swim" || w.name == "sparsemxv" ||
                w.name == "dgemm") {
                subset.push_back(w);
            }
        }
        suite = subset;
    }
    for (const auto &w : suite) {
        const auto r = runOn(cfg, w);
        std::printf("%-12s %8.2f %8.2f %8.2f %8.2f   ",
                    w.name.c_str(), r.opc(), r.fpc(), r.mpc(),
                    r.otherPc());
        const unsigned bars = static_cast<unsigned>(r.opc() / 1.5);
        for (unsigned i = 0; i < bars && i < 36; ++i)
            std::putchar('#');
        std::putchar('\n');
    }
    return 0;
}
