/**
 * @file
 * Component microbenchmarks (google-benchmark): throughput of the
 * conflict-free slicer, the CR-box tournament, the functional
 * interpreter and the L2 slice pipeline. These measure the simulator
 * itself, not the simulated machine -- useful to keep the cycle model
 * fast enough for the paper-scale sweeps.
 */

#include <benchmark/benchmark.h>

#include <vector>

#include "base/random.hh"
#include "cache/l2_cache.hh"
#include "exec/interp.hh"
#include "exec/memory.hh"
#include "mem/zbox.hh"
#include "program/assembler.hh"
#include "vbox/slicer.hh"

using namespace tarantula;

namespace
{

std::vector<exec::VecElemAddr>
stridedAddrs(std::int64_t stride, unsigned vl)
{
    std::vector<exec::VecElemAddr> v;
    for (unsigned i = 0; i < vl; ++i) {
        v.push_back({static_cast<std::uint16_t>(i),
                     0x100000 + static_cast<std::uint64_t>(
                                    stride * std::int64_t(i))});
    }
    return v;
}

void
BM_SlicerStride1Pump(benchmark::State &state)
{
    vbox::Slicer slicer;
    auto addrs = stridedAddrs(8, 128);
    for (auto _ : state) {
        auto plan = slicer.plan(addrs, false, true, 8, 1);
        benchmark::DoNotOptimize(plan.slices.size());
    }
    state.SetItemsProcessed(state.iterations() * 128);
}
BENCHMARK(BM_SlicerStride1Pump);

void
BM_SlicerOddStrideReorder(benchmark::State &state)
{
    vbox::Slicer slicer;
    const std::int64_t stride = state.range(0) * 8;
    auto addrs = stridedAddrs(stride, 128);
    for (auto _ : state) {
        auto plan = slicer.plan(addrs, false, true, stride, 1);
        benchmark::DoNotOptimize(plan.slices.size());
    }
    state.SetItemsProcessed(state.iterations() * 128);
}
BENCHMARK(BM_SlicerOddStrideReorder)->Arg(3)->Arg(7)->Arg(31);

void
BM_CrBoxRandomGather(benchmark::State &state)
{
    vbox::Slicer slicer;
    Random rng(11);
    std::vector<exec::VecElemAddr> addrs;
    for (unsigned i = 0; i < 128; ++i) {
        addrs.push_back({static_cast<std::uint16_t>(i),
                         rng.below(1 << 17) * 8});
    }
    for (auto _ : state) {
        auto plan = slicer.plan(addrs, false, false, 0, 1);
        benchmark::DoNotOptimize(plan.addrGenCycles);
    }
    state.SetItemsProcessed(state.iterations() * 128);
}
BENCHMARK(BM_CrBoxRandomGather);

void
BM_InterpScalarLoop(benchmark::State &state)
{
    using namespace program;
    Assembler a;
    Label loop = a.newLabel();
    a.movi(R(1), 1000);
    a.bind(loop);
    a.addq(R(2), R(2), 1);
    a.mulq(R(3), R(2), 7);
    a.xor_(R(4), R(3), R(2));
    a.subq(R(1), R(1), 1);
    a.bgt(R(1), loop);
    a.halt();
    Program p = a.finalize();
    exec::FunctionalMemory mem;
    for (auto _ : state) {
        exec::Interpreter interp(p, mem);
        const auto n = interp.run();
        benchmark::DoNotOptimize(n);
        state.SetItemsProcessed(state.items_processed() +
                                static_cast<std::int64_t>(n));
    }
}
BENCHMARK(BM_InterpScalarLoop);

void
BM_InterpVectorLoop(benchmark::State &state)
{
    using namespace program;
    Assembler a;
    Label loop = a.newLabel();
    a.movi(R(1), 0x100000);
    a.movi(R(3), 100);
    a.setvl(128);
    a.setvs(8);
    a.bind(loop);
    a.vldt(V(0), R(1));
    a.vmult(V(1), V(0), 1.5);
    a.vaddt(V(2), V(1), V(0));
    a.vstt(V(2), R(1), 65536);
    a.subq(R(3), R(3), 1);
    a.bgt(R(3), loop);
    a.halt();
    Program p = a.finalize();
    exec::FunctionalMemory mem;
    for (auto _ : state) {
        exec::Interpreter interp(p, mem);
        benchmark::DoNotOptimize(interp.run());
    }
    // 4 vector ops x 128 elements x 100 iterations per run.
    state.SetItemsProcessed(state.iterations() * 4 * 128 * 100);
}
BENCHMARK(BM_InterpVectorLoop);

void
BM_L2WarmSlicePipeline(benchmark::State &state)
{
    stats::StatGroup root("bench");
    mem::Zbox zbox(mem::ZboxConfig{}, root);
    cache::L2Cache l2(cache::L2Config{}, zbox, root);
    mem::Slice s;
    s.id = 1;
    for (unsigned i = 0; i < 16; ++i) {
        s.elems[i] = {true, static_cast<std::uint16_t>(i),
                      0x100000 + i * 64};
        l2.warmLine(s.elems[i].addr);
    }
    for (auto _ : state) {
        zbox.cycle();
        l2.cycle();
        if (l2.acceptSlice(s))
            ++s.id;
        while (l2.dequeueSliceResp()) {
        }
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_L2WarmSlicePipeline);

} // anonymous namespace

BENCHMARK_MAIN();
