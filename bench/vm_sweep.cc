/**
 * @file
 * The OS/VM sensitivity sweep (DESIGN.md §15): an AraOS-style
 * page-size x TLB-geometry x refill-policy grid over a dense kernel,
 * a gather-bound kernel and a random-gather kernel.
 *
 * Each grid point runs the full machine with the VM scenario layer
 * on: TLB misses walk a multi-level page table through the real
 * L2/Zbox (so translation traffic steals memory bandwidth), and the
 * first touch of every page charges the minor-fault handler cost.
 * The table reports cycles against the flat-cost PALcode baseline,
 * the walk counts, and the extra raw bytes the memory controller
 * moved for PTEs -- the attribution trail for the paper's 512 MB
 * page-size argument: at 8 KB pages the gather kernels pay a
 * double-digit-percent (to multi-x) cycle penalty that is pure
 * translation overhead, while 512 MB pages make it vanish.
 *
 * Smoke mode (TARANTULA_BENCH_SMOKE=1 or --smoke) shrinks the grid
 * to two page sizes on the paper's TLB so CI runs the binary on
 * every change.
 */

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "base/logging.hh"
#include "bench/bench_util.hh"
#include "exec/memory.hh"
#include "proc/machine_config.hh"
#include "system/system.hh"
#include "tlb/tlb.hh"
#include "workloads/workload.hh"

using namespace tarantula;

namespace
{

struct PointResult
{
    Cycle cycles = 0;
    std::uint64_t walks = 0;
    std::uint64_t walkMemReads = 0;
    std::uint64_t zboxRawBytes = 0;
};

/** Sum every occurrence of `"key":N` in a stats-tree JSON dump. */
std::uint64_t
sumCounter(const std::string &json, const char *key)
{
    const std::string needle = std::string("\"") + key + "\":";
    std::uint64_t total = 0;
    std::size_t pos = 0;
    while ((pos = json.find(needle, pos)) != std::string::npos) {
        pos += needle.size();
        total += std::strtoull(json.c_str() + pos, nullptr, 10);
    }
    return total;
}

/** One full-machine run; checks the architectural result. */
PointResult
runPoint(const workloads::Workload &w, const proc::MachineConfig &cfg)
{
    exec::FunctionalMemory mem;
    w.init(mem);
    const std::vector<const program::Program *> progs{&w.vectorProg};
    const std::vector<exec::FunctionalMemory *> mems{&mem};
    sys::System sys(cfg, progs, mems);
    for (const auto &r : w.warmRanges) {
        for (std::uint64_t o = 0; o < r.bytes; o += CacheLineBytes)
            sys.l2().warmLine(r.base + o);
    }
    const auto res = sys.run(8ULL << 30);
    const std::string err = w.check(mem);
    if (!err.empty()) {
        fatal("%s: wrong result with VM scenario on: %s",
              w.name.c_str(), err.c_str());
    }
    std::ostringstream os;
    sys.stats().reportJson(os);
    const std::string json = os.str();
    PointResult out;
    out.cycles = res.cycles;
    out.walks = sumCounter(json, "walks");
    out.walkMemReads = sumCounter(json, "walk_mem_reads");
    out.zboxRawBytes = sys.zbox().rawBytes();
    return out;
}

struct Geometry
{
    unsigned entries;
    unsigned assoc;
};

const char *
policyName(tlb::RefillPolicy p)
{
    return p == tlb::RefillPolicy::AllLanes ? "all-lanes" : "missed";
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    const bool smoke = bench::smokeMode(argc, argv);

    std::vector<unsigned> page_bits = {29, 21, 16, 13};
    // The paper's per-lane TLB is a 32-entry CAM; 32x8 is the minimum
    // associativity that still guarantees forward progress, 16x8 a
    // halved capacity point.
    std::vector<Geometry> geometries = {{32, 32}, {32, 8}, {16, 8}};
    std::vector<tlb::RefillPolicy> policies = {
        tlb::RefillPolicy::MissedLanesOnly, tlb::RefillPolicy::AllLanes};
    std::vector<std::string> kernels = {"dgemm", "sparsemxv",
                                        "rndcopy"};
    if (smoke) {
        page_bits = {29, 13};
        geometries = {{32, 32}};
        policies = {tlb::RefillPolicy::MissedLanesOnly};
        kernels = {"dgemm", "rndcopy"};
    }

    std::printf("OS/VM sensitivity sweep on T (DESIGN.md §15)%s\n",
                smoke ? " [smoke]" : "");
    std::printf("%-10s %-6s %-7s %-9s %12s %9s %10s %12s %10s\n",
                "kernel", "page", "tlb", "refill", "cycles",
                "vs-flat", "walks", "pte-reads", "pte-MB");

    for (const auto &name : kernels) {
        const workloads::Workload w = workloads::byName(name);

        // The baseline: the flat-cost PALcode refill (the pre-VM
        // machine, byte-identical to the golden grid).
        proc::MachineConfig flat_cfg = proc::machineByName("T");
        const PointResult flat = runPoint(w, flat_cfg);
        std::printf("%-10s %-6s %-7s %-9s %12llu %9s %10s %12s %10s\n",
                    name.c_str(), "flat", "32x32", "missed",
                    static_cast<unsigned long long>(flat.cycles), "-",
                    "-", "-", "-");

        for (const unsigned pb : page_bits) {
            for (const auto &g : geometries) {
                for (const auto policy : policies) {
                    proc::MachineConfig cfg = proc::machineByName("T");
                    cfg.vbox.tlb.entries = g.entries;
                    cfg.vbox.tlb.assoc = g.assoc;
                    cfg.vbox.tlb.pageBits = pb;
                    cfg.vbox.refill = policy;
                    cfg.vm.enabled = true;
                    cfg.vm.pageBits = pb;
                    const PointResult r = runPoint(w, cfg);

                    char page[16];
                    if (pb >= 20) {
                        std::snprintf(page, sizeof page, "%uM",
                                      1u << (pb - 20));
                    } else {
                        std::snprintf(page, sizeof page, "%uK",
                                      1u << (pb - 10));
                    }
                    char geom[16];
                    std::snprintf(geom, sizeof geom, "%ux%u",
                                  g.entries, g.assoc);
                    const double swing =
                        100.0 *
                        (static_cast<double>(r.cycles) /
                             static_cast<double>(flat.cycles) -
                         1.0);
                    const double pte_mb =
                        static_cast<double>(r.zboxRawBytes -
                                            flat.zboxRawBytes) /
                        (1024.0 * 1024.0);
                    std::printf("%-10s %-6s %-7s %-9s %12llu %+8.1f%% "
                                "%10llu %12llu %10.2f\n",
                                name.c_str(), page, geom,
                                policyName(policy),
                                static_cast<unsigned long long>(
                                    r.cycles),
                                swing,
                                static_cast<unsigned long long>(
                                    r.walks),
                                static_cast<unsigned long long>(
                                    r.walkMemReads),
                                pte_mb);
                }
            }
        }
        std::printf("\n");
    }
    return 0;
}
