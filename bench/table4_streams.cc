/**
 * @file
 * Reproduces Table 4: sustained bandwidth of the memory-system
 * microkernels on Tarantula, in the STREAMS accounting (useful
 * read/write bytes) and in raw controller traffic including directory
 * updates.
 */

#include <cstdio>

#include "bench/bench_util.hh"

using namespace tarantula;
using namespace tarantula::bench;

int
main()
{
    std::printf("Table 4: sustained bandwidth in MB/s on Tarantula\n");
    std::printf("Paper reference: Copy 42983/64475, Scale 41689/62492, "
                "Add 43097/57463,\n");
    std::printf("                 Triadd 47970/63960, RndCopy 73456/-, "
                "RndMemScale 7512/50106\n\n");
    std::printf("%-14s %12s %12s %10s %12s\n", "STREAMS",
                "Streams BW", "Raw BW", "ratio", "activates");
    rule(66);

    const auto cfg = proc::tarantulaConfig();
    for (const auto &w : workloads::microkernelSuite()) {
        const auto r = runOn(cfg, w);
        const double streams = r.bandwidthMBs(w.usefulBytes);
        const double raw = r.rawBandwidthMBs();
        std::printf("%-14s %12.0f %12.0f %10.2f %12llu\n",
                    w.name.c_str(), streams, raw,
                    raw > 0 ? streams / raw : 0.0,
                    static_cast<unsigned long long>(r.rowActivates));
    }
    return 0;
}
