/**
 * @file
 * Reproduces Figure 8: performance scaling when the core frequency
 * rises to 4.8 GHz (T4, 1:4 CPU:RAMBUS) and 10.6 GHz (T10, 1:8 to
 * 1333 MHz parts). Reported as wall-clock speedup over T, so a value
 * equal to the clock ratio means perfect scaling.
 */

#include <cstdio>

#include "bench/bench_util.hh"

using namespace tarantula;
using namespace tarantula::bench;

int
main()
{
    std::printf("Figure 8: performance scaling with frequency "
                "(speedup over T)\n");
    std::printf("Clock ratios: T4 = 2.25x, T10 = 4.98x. Paper shape: "
                "cache-resident codes\n");
    std::printf("scale well; memory-bound codes (sparse MxV) barely "
                "reach 1.6-1.8x.\n\n");
    std::printf("%-12s %10s %10s %10s %10s\n", "benchmark", "T cyc",
                "T4 spd", "T10 spd", "");
    rule(56);

    const auto t = proc::tarantulaConfig();
    const auto t4 = proc::tarantula4Config();
    const auto t10 = proc::tarantula10Config();

    for (const auto &w : workloads::figureSuite()) {
        const auto rt = runOn(t, w);
        const auto rt4 = runOn(t4, w);
        const auto rt10 = runOn(t10, w);
        std::printf("%-12s %10llu %10.2f %10.2f\n", w.name.c_str(),
                    static_cast<unsigned long long>(rt.cycles),
                    rt.seconds() / rt4.seconds(),
                    rt.seconds() / rt10.seconds());
    }
    return 0;
}
