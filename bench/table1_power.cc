/**
 * @file
 * Reproduces Table 1: power and area estimates for a CMP of two EV8
 * cores versus Tarantula, with the Gflops/Watt comparison the paper
 * closes on (plus the FMAC what-if from section 5).
 */

#include <cstdio>

#include "power/power_model.hh"

using namespace tarantula::power;

namespace
{

void
printColumn(const ChipEstimate &e)
{
    std::printf("\n%s\n", e.name.c_str());
    std::printf("  %-12s %8s %9s\n", "Circuitry", "Area(%)",
                "Power(W)");
    for (const auto &c : e.components) {
        if (c.areaMm2 > 0.0) {
            std::printf("  %-12s %8.0f %9.1f\n", c.name.c_str(),
                        e.areaPercent(c.name), c.watts);
        } else {
            std::printf("  %-12s %8s %9.1f\n", c.name.c_str(), "-",
                        c.watts);
        }
    }
    std::printf("  %-12s %8s %9.1f\n", "Total (+20%)", "",
                e.totalWatts());
    std::printf("  %-12s %5.0f mm2\n", "Die Area", e.dieAreaMm2());
    std::printf("  %-12s %8.0f\n", "Peak Gflops", e.peakGflops());
    std::printf("  %-12s %8.2f\n", "Gflops/Watt", e.gflopsPerWatt());
}

} // anonymous namespace

int
main()
{
    std::printf("Table 1: power and area estimates (65 nm, ~1 V, "
                "2.5 GHz)\n");
    std::printf("Paper reference: CMP-EV8 128.0 W / 250 mm2 / 0.16 "
                "Gflops/W;\n");
    std::printf("                 Tarantula 143.7 W / 286 mm2 / 0.55 "
                "Gflops/W\n");

    const ChipEstimate cmp = cmpEv8Estimate();
    const ChipEstimate t = tarantulaEstimate();
    printColumn(cmp);
    printColumn(t);

    std::printf("\nGflops/Watt ratio (Tarantula / CMP-EV8): %.2fx "
                "(paper: 3.4x)\n",
                t.gflopsPerWatt() / cmp.gflopsPerWatt());

    const ChipEstimate fmac = tarantulaFmacEstimate();
    std::printf("\nSection 5 what-if: adding FMAC units\n");
    std::printf("  %-16s peak %3.0f Gflops, %6.1f W, %4.2f Gflops/W\n",
                t.name.c_str(), t.peakGflops(), t.totalWatts(),
                t.gflopsPerWatt());
    std::printf("  %-16s peak %3.0f Gflops, %6.1f W, %4.2f Gflops/W\n",
                fmac.name.c_str(), fmac.peakGflops(),
                fmac.totalWatts(), fmac.gflopsPerWatt());
    return 0;
}
