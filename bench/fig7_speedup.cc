/**
 * @file
 * Reproduces Figure 7: the speedup of EV8+ (EV8 core with Tarantula's
 * memory system) and of Tarantula itself over the EV8 baseline.
 */

#include <cmath>
#include <cstdio>

#include "bench/bench_util.hh"

using namespace tarantula;
using namespace tarantula::bench;

int
main()
{
    std::printf("Figure 7: speedup of EV8+ and Tarantula over EV8\n");
    std::printf("Paper shape: Tarantula typically >= 5x (peak flop "
                "ratio is 8x); several\n");
    std::printf("benchmarks exceed 8x; EV8+ alone explains only a "
                "small part of the win.\n\n");
    std::printf("%-12s %10s %10s %10s %10s %10s\n", "benchmark",
                "EV8 cyc", "EV8+ cyc", "T cyc", "EV8+ spd", "T spd");
    rule(68);

    const auto ev8 = proc::ev8Config();
    const auto ev8p = proc::ev8PlusConfig();
    const auto t = proc::tarantulaConfig();

    double geo_plus = 1.0, geo_t = 1.0;
    unsigned n = 0;
    for (const auto &w : workloads::figureSuite()) {
        const auto re = runOn(ev8, w);
        const auto rp = runOn(ev8p, w);
        const auto rt = runOn(t, w);
        const double s_plus =
            static_cast<double>(re.cycles) / rp.cycles;
        const double s_t = static_cast<double>(re.cycles) / rt.cycles;
        std::printf("%-12s %10llu %10llu %10llu %10.2f %10.2f\n",
                    w.name.c_str(),
                    static_cast<unsigned long long>(re.cycles),
                    static_cast<unsigned long long>(rp.cycles),
                    static_cast<unsigned long long>(rt.cycles), s_plus,
                    s_t);
        geo_plus *= s_plus;
        geo_t *= s_t;
        ++n;
    }
    if (n) {
        std::printf("\ngeometric mean speedup: EV8+ %.2fx, Tarantula "
                    "%.2fx (paper average: ~5x)\n",
                    std::pow(geo_plus, 1.0 / n),
                    std::pow(geo_t, 1.0 / n));
    }
    return 0;
}
