/**
 * @file
 * Reproduces Figure 7: the speedup of EV8+ (EV8 core with Tarantula's
 * memory system) and of Tarantula itself over the EV8 baseline.
 *
 * The 3-machine x 12-benchmark grid is submitted to SimFarm and runs
 * on all host threads; results come back in submission order so the
 * table prints exactly as the serial version did.
 */

#include <cmath>
#include <cstdio>
#include <vector>

#include "bench/bench_util.hh"
#include "sim/sim_farm.hh"

using namespace tarantula;
using namespace tarantula::bench;

int
main(int argc, char **argv)
{
    const bool smoke = smokeMode(argc, argv);
    std::printf("Figure 7: speedup of EV8+ and Tarantula over EV8%s\n",
                smoke ? " (smoke subset)" : "");
    std::printf("Paper shape: Tarantula typically >= 5x (peak flop "
                "ratio is 8x); several\n");
    std::printf("benchmarks exceed 8x; EV8+ alone explains only a "
                "small part of the win.\n\n");
    std::printf("%-12s %10s %10s %10s %10s %10s\n", "benchmark",
                "EV8 cyc", "EV8+ cyc", "T cyc", "EV8+ spd", "T spd");
    rule(68);

    const char *machines[] = {"EV8", "EV8+", "T"};
    auto suite = workloads::figureSuite();
    if (smoke) {
        // Three benchmarks spanning the speedup range: a stride-1
        // streamer, a gather/scatter code, and a dense-compute kernel.
        std::vector<workloads::Workload> subset;
        for (const auto &w : suite) {
            if (w.name == "swim" || w.name == "sparsemxv" ||
                w.name == "dgemm") {
                subset.push_back(w);
            }
        }
        suite = subset;
    }

    sim::SimFarm farm;
    for (const auto &w : suite) {
        for (const auto *m : machines) {
            sim::Job job;
            job.machine = m;
            job.workload = w.name;
            farm.submit(job);
        }
    }
    const sim::BatchResult batch = farm.run();
    for (const auto &r : batch.jobs) {
        if (!r.ok())
            fatal("%s on %s: %s", r.job.workload.c_str(),
                  r.job.machine.c_str(), r.message.c_str());
    }

    double geo_plus = 1.0, geo_t = 1.0;
    unsigned n = 0;
    for (std::size_t i = 0; i < suite.size(); ++i) {
        const auto &re = batch.jobs[i * 3 + 0].run;
        const auto &rp = batch.jobs[i * 3 + 1].run;
        const auto &rt = batch.jobs[i * 3 + 2].run;
        const double s_plus =
            static_cast<double>(re.cycles) / rp.cycles;
        const double s_t = static_cast<double>(re.cycles) / rt.cycles;
        std::printf("%-12s %10llu %10llu %10llu %10.2f %10.2f\n",
                    suite[i].name.c_str(),
                    static_cast<unsigned long long>(re.cycles),
                    static_cast<unsigned long long>(rp.cycles),
                    static_cast<unsigned long long>(rt.cycles), s_plus,
                    s_t);
        geo_plus *= s_plus;
        geo_t *= s_t;
        ++n;
    }
    if (n) {
        std::printf("\ngeometric mean speedup: EV8+ %.2fx, Tarantula "
                    "%.2fx (paper average: ~5x)\n",
                    std::pow(geo_plus, 1.0 / n),
                    std::pow(geo_t, 1.0 / n));
    }
    std::printf("simfarm: %u threads, wall %.1fs "
                "(serial-equivalent %.1fs)\n",
                batch.threads, batch.wallSeconds,
                batch.serialSeconds);
    return 0;
}
