/**
 * @file
 * Prints Table 3: the characteristics of the four architectures under
 * study (EV8, EV8+, T, T4) plus the T10 scaling point, as configured
 * in this model.
 */

#include <cstdio>

#include "proc/machine_config.hh"

using namespace tarantula;
using proc::MachineConfig;

namespace
{

/** Sustainable L2 bandwidth in GB/s for this configuration. */
double
l2BandwidthGBs(const MachineConfig &m)
{
    // EV8-style L2: a line read and a line write per cycle.
    // Tarantula: 16 lines read / 4 cycles + 16 lines written / 4
    // cycles in stride-1 pump mode.
    const double bytes_per_cycle =
        m.hasVbox ? 2.0 * 16 * 64 / 4.0 : 2.0 * 64;
    return bytes_per_cycle * m.freqGhz;
}

double
memBandwidthGBs(const MachineConfig &m)
{
    // Raw: ports * 64B per lineXfer mem-clocks at the memory clock.
    const double mem_ghz = m.freqGhz / m.zbox.cpuPerMemClock;
    return m.zbox.numPorts * 64.0 * mem_ghz /
           m.zbox.lineXferMemClocks;
}

void
row(const char *name, double ev8, double ev8p, double t, double t4,
    double t10, const char *fmt = "%10.1f")
{
    std::printf("%-26s", name);
    for (double v : {ev8, ev8p, t, t4, t10})
        std::printf(fmt, v);
    std::printf("\n");
}

} // anonymous namespace

int
main()
{
    const MachineConfig ev8 = proc::ev8Config();
    const MachineConfig ev8p = proc::ev8PlusConfig();
    const MachineConfig t = proc::tarantulaConfig();
    const MachineConfig t4 = proc::tarantula4Config();
    const MachineConfig t10 = proc::tarantula10Config();

    std::printf("Table 3: characteristics of the architectures under "
                "study\n\n");
    std::printf("%-26s%10s%10s%10s%10s%10s\n", "Symbol", "EV8", "EV8+",
                "T", "T4", "T10");

    row("Core Speed (GHz)", ev8.freqGhz, ev8p.freqGhz, t.freqGhz,
        t4.freqGhz, t10.freqGhz, "%10.2f");
    row("Vbox issue", 0, 0, t.vbox.dispatchBusWidth,
        t4.vbox.dispatchBusWidth, t10.vbox.dispatchBusWidth, "%10.0f");
    row("Peak FP ops/cycle", ev8.core.fpIssueWidth,
        ev8p.core.fpIssueWidth, 32, 32, 32, "%10.0f");
    row("Peak Ld+St/cycle",
        ev8.core.loadPorts + ev8.core.storePorts,
        ev8p.core.loadPorts + ev8p.core.storePorts, 64, 64, 64,
        "%10.0f");
    row("L1 assoc", ev8.core.l1.assoc, ev8p.core.l1.assoc,
        t.core.l1.assoc, t4.core.l1.assoc, t10.core.l1.assoc,
        "%10.0f");
    row("L2 size (MB)", ev8.l2.sizeBytes >> 20, ev8p.l2.sizeBytes >> 20,
        t.l2.sizeBytes >> 20, t4.l2.sizeBytes >> 20,
        t10.l2.sizeBytes >> 20, "%10.0f");
    row("L2 assoc", ev8.l2.assoc, ev8p.l2.assoc, t.l2.assoc,
        t4.l2.assoc, t10.l2.assoc, "%10.0f");
    row("L2 BW (GB/s)", l2BandwidthGBs(ev8), l2BandwidthGBs(ev8p),
        l2BandwidthGBs(t), l2BandwidthGBs(t4), l2BandwidthGBs(t10));
    row("RAMBUS ports", ev8.zbox.numPorts, ev8p.zbox.numPorts,
        t.zbox.numPorts, t4.zbox.numPorts, t10.zbox.numPorts,
        "%10.0f");
    row("CPU:mem clock ratio", ev8.zbox.cpuPerMemClock,
        ev8p.zbox.cpuPerMemClock, t.zbox.cpuPerMemClock,
        t4.zbox.cpuPerMemClock, t10.zbox.cpuPerMemClock, "%10.0f");
    row("Mem BW (GB/s)", memBandwidthGBs(ev8), memBandwidthGBs(ev8p),
        memBandwidthGBs(t), memBandwidthGBs(t4),
        memBandwidthGBs(t10));

    std::printf("\nPaper reference row (Mem BW GB/s): 16.6 / 66.6 / "
                "66.6 / 75.0\n");
    return 0;
}
