/**
 * @file
 * Host-performance microbenchmark for the quiescence fast-forward
 * engine (DESIGN.md §8): run the same programs with fast-forward off
 * (strict cycle stepping) and on, verify the simulated timing is
 * bit-identical, and report simulated cycles per host second for both
 * modes plus the speedup.
 *
 * The headline case is a pointer-chasing dependent-load chain over a
 * cold footprint: the machine spends almost every cycle waiting on
 * memory, which is exactly the phase the engine can skip. Bandwidth-
 * and compute-bound workloads from the registry are included to show
 * the engine never pays more than the horizon bookkeeping there.
 *
 * Smoke mode (TARANTULA_BENCH_SMOKE=1 or --smoke) shrinks the chase
 * so CI can run the binary in seconds.
 */

#include <cstdio>
#include <cstring>

#include "bench/bench_util.hh"
#include "program/assembler.hh"

using namespace tarantula;
using namespace tarantula::bench;
using program::Assembler;
using program::Label;
using program::Program;
using program::R;

namespace
{

/** Dependent-load chain: every iteration misses all caches. */
Program
chaseProgram(std::uint64_t iters)
{
    Assembler a;
    Label loop = a.newLabel();
    a.movi(R(1), 0x100000);
    a.movi(R(2), static_cast<std::int64_t>(iters));
    a.bind(loop);
    a.ldq(R(3), 0, R(1));       // loads zero: the chain is in timing
    a.addq(R(1), R(1), R(3));
    a.addq(R(1), R(1), 4096);   // a fresh line (and DRAM row) each time
    a.subq(R(2), R(2), 1);
    a.bgt(R(2), loop);
    a.halt();
    return a.finalize();
}

proc::RunResult
runProgram(const proc::MachineConfig &cfg, const Program &prog)
{
    exec::FunctionalMemory mem;
    proc::Processor p(cfg, prog, mem);
    return p.run(8ULL << 30);
}

void
report(const char *name, const proc::RunResult &stepped,
       const proc::RunResult &ff)
{
    if (stepped.cycles != ff.cycles)
        fatal("%s: fast-forward diverged: %llu vs %llu cycles", name,
              static_cast<unsigned long long>(stepped.cycles),
              static_cast<unsigned long long>(ff.cycles));
    const double speedup =
        stepped.hostMillis > 0.0 && ff.hostMillis > 0.0
            ? stepped.hostMillis / ff.hostMillis
            : 0.0;
    std::printf("%-12s %11llu %9.2f %9.2f %7.2fx %6.1f%%\n", name,
                static_cast<unsigned long long>(ff.cycles),
                stepped.simCyclesPerHostSec() / 1e6,
                ff.simCyclesPerHostSec() / 1e6, speedup,
                100.0 * static_cast<double>(ff.ffSkippedCycles) /
                    static_cast<double>(ff.cycles ? ff.cycles : 1));
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    const bool smoke = smokeMode(argc, argv);

    std::printf("Host performance: quiescence fast-forward engine%s\n",
                smoke ? " (smoke)" : "");
    std::printf("Simulated timing is bit-identical in both modes "
                "(verified per row).\n\n");
    std::printf("%-12s %11s %9s %9s %8s %7s\n", "program", "cycles",
                "step Mc/s", "ff Mc/s", "speedup", "skipped");
    rule(62);

    // The memory-latency-bound headline: a dependent-load chain.
    {
        const Program prog = chaseProgram(smoke ? 2'000 : 20'000);
        for (const char *machine : {"EV8", "T"}) {
            proc::MachineConfig cfg = proc::machineByName(machine);
            cfg.fastForward = false;
            const auto stepped = runProgram(cfg, prog);
            cfg.fastForward = true;
            const auto ff = runProgram(cfg, prog);
            char label[32];
            std::snprintf(label, sizeof(label), "chase/%s", machine);
            report(label, stepped, ff);
        }
    }

    // Registry workloads for context: latency-bound (sparsemxv),
    // bandwidth-bound (rndcopy), compute-bound (dgemm).
    for (const char *name : {"sparsemxv", "rndcopy", "dgemm"}) {
        const workloads::Workload w = workloads::byName(name);
        proc::MachineConfig cfg = proc::machineByName("T");
        cfg.fastForward = false;
        const auto stepped = runOn(cfg, w);
        cfg.fastForward = true;
        const auto ff = runOn(cfg, w);
        report(name, stepped, ff);
    }

    // Observability overhead (DESIGN.md §9): the same fast-forwarded
    // run with event tracing and 1k-cycle sampling on. Simulated
    // timing must stay bit-identical; the table shows what the host
    // pays for collection (mostly event storage plus the sampler's
    // jump clamp).
    std::printf("\nTracing overhead (fast-forward on, --trace + "
                "--sample-every 1000):\n");
    std::printf("%-12s %11s %9s %9s %8s\n", "program", "cycles",
                "bare Mc/s", "traced", "overhead");
    rule(54);
    for (const char *name : {"sparsemxv", "dgemm"}) {
        const workloads::Workload w = workloads::byName(name);
        proc::MachineConfig cfg = proc::machineByName("T");
        cfg.fastForward = true;
        const auto bare = runOn(cfg, w);
        cfg.trace.events = true;
        cfg.trace.sampleEvery = 1000;
        const auto traced = runOn(cfg, w);
        if (bare.cycles != traced.cycles)
            fatal("%s: tracing perturbed timing: %llu vs %llu cycles",
                  name, static_cast<unsigned long long>(bare.cycles),
                  static_cast<unsigned long long>(traced.cycles));
        const double overhead =
            traced.hostMillis > 0.0 && bare.hostMillis > 0.0
                ? traced.hostMillis / bare.hostMillis - 1.0
                : 0.0;
        std::printf("%-12s %11llu %9.2f %9.2f %7.1f%%\n", name,
                    static_cast<unsigned long long>(traced.cycles),
                    bare.simCyclesPerHostSec() / 1e6,
                    traced.simCyclesPerHostSec() / 1e6,
                    100.0 * overhead);
    }
    return 0;
}
