/**
 * @file
 * Host-performance microbenchmark for the simulator's two speed
 * engines, both of which must be bit-identical to the reference path:
 *
 *  - the quiescence fast-forward engine (DESIGN.md §8): run the same
 *    programs with fast-forward off (strict cycle stepping) and on,
 *    verify the simulated timing is bit-identical, and report
 *    simulated cycles per host second for both modes plus the speedup.
 *
 *  - the predecoded-µop engine (DESIGN.md §14): run the same
 *    workloads with the µop cache off (reference decode-per-step
 *    interpreter) and on, again verifying bit-identical cycles, and
 *    additionally time the bare functional engine (Interpreter::run,
 *    no timing model) where the decode savings show up undiluted.
 *
 * The fast-forward headline is a pointer-chasing dependent-load chain
 * over a cold footprint: the machine spends almost every cycle waiting
 * on memory, which is exactly the phase the engine can skip. The µop
 * headline is the dgemm-class compute kernels, where decode overhead
 * dominates the functional half of the work.
 *
 * Every measured row is also emitted as a tarantula.bench.v1 JSON
 * document (BENCH_host_perf.json by default, --json FILE to move it)
 * so sweeps over commits can chart engine speed without scraping the
 * table (see EXPERIMENTS.md).
 *
 * Smoke mode (TARANTULA_BENCH_SMOKE=1 or --smoke) shrinks the chase
 * so CI can run the binary in seconds. The µop section's off/on cycle
 * comparison still runs in smoke mode -- that divergence check is a
 * CI gate -- but the functional speed gate (>= 5x on dgemm) only
 * applies to full runs, where timing noise cannot trip it.
 */

#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "bench/bench_util.hh"
#include "exec/interp.hh"
#include "program/assembler.hh"
#include "sim/json.hh"

using namespace tarantula;
using namespace tarantula::bench;
using program::Assembler;
using program::Label;
using program::Program;
using program::R;

namespace
{

/** Minimum acceptable µop-engine speedup on the bare functional run
 *  of dgemm (full mode only; the design target is 10x). */
constexpr double UcacheFunctionalGate = 5.0;

/** One measured table row, kept for the JSON report. */
struct BenchRow
{
    std::string section;
    std::string name;
    std::uint64_t work = 0;     ///< cycles (timed) or insts (functional)
    double baseRate = 0.0;      ///< reference-mode rate (M/s)
    double fastRate = 0.0;      ///< fast-mode rate (M/s)
    double speedup = 0.0;
    double extra = 0.0;         ///< skipped%% / overhead%% where relevant
};

std::vector<BenchRow> g_rows;

/** Dependent-load chain: every iteration misses all caches. */
Program
chaseProgram(std::uint64_t iters)
{
    Assembler a;
    Label loop = a.newLabel();
    a.movi(R(1), 0x100000);
    a.movi(R(2), static_cast<std::int64_t>(iters));
    a.bind(loop);
    a.ldq(R(3), 0, R(1));       // loads zero: the chain is in timing
    a.addq(R(1), R(1), R(3));
    a.addq(R(1), R(1), 4096);   // a fresh line (and DRAM row) each time
    a.subq(R(2), R(2), 1);
    a.bgt(R(2), loop);
    a.halt();
    return a.finalize();
}

proc::RunResult
runProgram(const proc::MachineConfig &cfg, const Program &prog)
{
    exec::FunctionalMemory mem;
    proc::Processor p(cfg, prog, mem);
    return p.run(8ULL << 30);
}

double
speedupOf(double base_ms, double fast_ms)
{
    return base_ms > 0.0 && fast_ms > 0.0 ? base_ms / fast_ms : 0.0;
}

void
report(const char *section, const char *name,
       const proc::RunResult &base, const proc::RunResult &fast,
       const char *base_label, double extra)
{
    if (base.cycles != fast.cycles)
        fatal("%s: %s diverged: %llu vs %llu cycles", name, base_label,
              static_cast<unsigned long long>(base.cycles),
              static_cast<unsigned long long>(fast.cycles));
    const double speedup = speedupOf(base.hostMillis, fast.hostMillis);
    std::printf("%-12s %11llu %9.2f %9.2f %7.2fx %6.1f%%\n", name,
                static_cast<unsigned long long>(fast.cycles),
                base.simCyclesPerHostSec() / 1e6,
                fast.simCyclesPerHostSec() / 1e6, speedup, extra);
    g_rows.push_back({section, name, fast.cycles,
                      base.simCyclesPerHostSec() / 1e6,
                      fast.simCyclesPerHostSec() / 1e6, speedup,
                      extra});
}

/** Bare functional engine run: no timing model, just the committed
 *  architectural work. This is where decode cost is undiluted. */
struct FuncResult
{
    std::uint64_t insts = 0;
    double hostMillis = 0.0;
};

FuncResult
runFunctional(const workloads::Workload &w, bool ucache)
{
    exec::FunctionalMemory mem;
    w.init(mem);
    exec::Interpreter interp(w.vectorProg, mem);
    interp.setUcache(ucache);
    const auto t0 = std::chrono::steady_clock::now();
    FuncResult r;
    r.insts = interp.run();
    r.hostMillis =
        std::chrono::duration<double, std::milli>(
            std::chrono::steady_clock::now() - t0).count();
    const std::string err = w.check(mem);
    if (!err.empty())
        fatal("%s (functional, ucache %s): wrong result: %s",
              w.name.c_str(), ucache ? "on" : "off", err.c_str());
    return r;
}

void
writeJson(const std::string &path, bool smoke)
{
    std::ofstream os(path);
    if (!os)
        fatal("cannot open '%s'", path.c_str());
    sim::JsonWriter w(os);
    w.beginObject();
    w.key("schema").value("tarantula.bench.v1");
    w.key("bench").value("host_perf");
    w.key("smoke").value(smoke);
    w.key("rows").beginArray();
    for (const auto &r : g_rows) {
        w.beginObject();
        w.key("section").value(r.section);
        w.key("name").value(r.name);
        w.key("work").value(r.work);
        w.key("baseRate").value(r.baseRate);
        w.key("fastRate").value(r.fastRate);
        w.key("speedup").value(r.speedup);
        w.key("extra").value(r.extra);
        w.endObject();
    }
    w.endArray();
    w.endObject();
    os << "\n";
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    const bool smoke = smokeMode(argc, argv);
    bool ucache_default = true;
    std::string json_path = "BENCH_host_perf.json";
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--no-ucache") == 0)
            ucache_default = false;
        else if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc)
            json_path = argv[++i];
    }

    std::printf("Host performance: engine speed%s\n",
                smoke ? " (smoke)" : "");
    std::printf("Simulated timing is bit-identical in every mode pair "
                "(verified per row).\n");

    std::printf("\nQuiescence fast-forward engine "
                "(µop engine %s on both sides):\n",
                ucache_default ? "on" : "off");
    std::printf("%-12s %11s %9s %9s %8s %7s\n", "program", "cycles",
                "step Mc/s", "ff Mc/s", "speedup", "skipped");
    rule(62);

    // The memory-latency-bound headline: a dependent-load chain.
    {
        const Program prog = chaseProgram(smoke ? 2'000 : 20'000);
        for (const char *machine : {"EV8", "T"}) {
            proc::MachineConfig cfg = proc::machineByName(machine);
            cfg.ucache = ucache_default;
            cfg.fastForward = false;
            const auto stepped = runProgram(cfg, prog);
            cfg.fastForward = true;
            const auto ff = runProgram(cfg, prog);
            char label[32];
            std::snprintf(label, sizeof(label), "chase/%s", machine);
            report("fastForward", label, stepped, ff, "fast-forward",
                   100.0 * static_cast<double>(ff.ffSkippedCycles) /
                       static_cast<double>(ff.cycles ? ff.cycles : 1));
        }
    }

    // Registry workloads for context: latency-bound (sparsemxv),
    // bandwidth-bound (rndcopy), compute-bound (dgemm).
    for (const char *name : {"sparsemxv", "rndcopy", "dgemm"}) {
        const workloads::Workload w = workloads::byName(name);
        proc::MachineConfig cfg = proc::machineByName("T");
        cfg.ucache = ucache_default;
        cfg.fastForward = false;
        const auto stepped = runOn(cfg, w);
        cfg.fastForward = true;
        const auto ff = runOn(cfg, w);
        report("fastForward", name, stepped, ff, "fast-forward",
               100.0 * static_cast<double>(ff.ffSkippedCycles) /
                   static_cast<double>(ff.cycles ? ff.cycles : 1));
    }

    // Predecoded-µop engine, full simulation: the same run with the
    // reference decode-per-step interpreter and with the µop cache.
    // The cycle comparison in report() is the divergence gate CI
    // relies on -- any semantic drift between the engines shows up as
    // a different cycle count (or a failed workload check) here.
    std::printf("\nPredecoded-µop engine, full simulation "
                "(fast-forward on):\n");
    std::printf("%-12s %11s %9s %9s %8s %7s\n", "workload", "cycles",
                "off Mc/s", "on Mc/s", "speedup", "");
    rule(62);
    for (const char *name : {"sparsemxv", "rndcopy", "dgemm"}) {
        const workloads::Workload w = workloads::byName(name);
        proc::MachineConfig cfg = proc::machineByName("T");
        cfg.fastForward = true;
        cfg.ucache = false;
        const auto off = runOn(cfg, w);
        cfg.ucache = true;
        const auto on = runOn(cfg, w);
        report("ucacheFullSim", name, off, on, "µop engine", 0.0);
    }

    // Predecoded-µop engine, bare functional runs: Interpreter::run
    // with no timing model. Decode cost is undiluted here, so this is
    // the engine-speed metric the µop cache is designed for.
    std::printf("\nPredecoded-µop engine, functional only "
                "(no timing model):\n");
    std::printf("%-12s %11s %9s %9s %8s\n", "workload", "insts",
                "off Mi/s", "on Mi/s", "speedup");
    rule(54);
    double dgemm_func_speedup = 0.0;
    for (const char *name : {"sparsemxv", "rndcopy", "dgemm"}) {
        const workloads::Workload w = workloads::byName(name);
        const FuncResult off = runFunctional(w, false);
        const FuncResult on = runFunctional(w, true);
        if (off.insts != on.insts)
            fatal("%s: functional µop run diverged: %llu vs %llu "
                  "insts", name,
                  static_cast<unsigned long long>(off.insts),
                  static_cast<unsigned long long>(on.insts));
        const double speedup =
            speedupOf(off.hostMillis, on.hostMillis);
        auto mips = [](const FuncResult &r) {
            return r.hostMillis > 0.0
                ? static_cast<double>(r.insts) / r.hostMillis / 1e3
                : 0.0;
        };
        std::printf("%-12s %11llu %9.2f %9.2f %7.2fx\n", name,
                    static_cast<unsigned long long>(on.insts),
                    mips(off), mips(on), speedup);
        g_rows.push_back({"ucacheFunctional", name, on.insts,
                          mips(off), mips(on), speedup, 0.0});
        if (std::strcmp(name, "dgemm") == 0)
            dgemm_func_speedup = speedup;
    }
    // The gate runs in smoke mode too (CI's bench-smoke depends on
    // it): even at smoke sizes dgemm clears 15x, a 3x margin.
    if (dgemm_func_speedup < UcacheFunctionalGate)
        fatal("µop engine functional speedup on dgemm is %.2fx, "
              "below the %.1fx gate (target 10x)",
              dgemm_func_speedup, UcacheFunctionalGate);

    // Observability overhead (DESIGN.md §9): the same fast-forwarded
    // run with event tracing and 1k-cycle sampling on. Simulated
    // timing must stay bit-identical; the table shows what the host
    // pays for collection (mostly event storage plus the sampler's
    // jump clamp).
    std::printf("\nTracing overhead (fast-forward on, --trace + "
                "--sample-every 1000):\n");
    std::printf("%-12s %11s %9s %9s %8s\n", "program", "cycles",
                "bare Mc/s", "traced", "overhead");
    rule(54);
    for (const char *name : {"sparsemxv", "dgemm"}) {
        const workloads::Workload w = workloads::byName(name);
        proc::MachineConfig cfg = proc::machineByName("T");
        cfg.ucache = ucache_default;
        cfg.fastForward = true;
        const auto bare = runOn(cfg, w);
        cfg.trace.events = true;
        cfg.trace.sampleEvery = 1000;
        const auto traced = runOn(cfg, w);
        if (bare.cycles != traced.cycles)
            fatal("%s: tracing perturbed timing: %llu vs %llu cycles",
                  name, static_cast<unsigned long long>(bare.cycles),
                  static_cast<unsigned long long>(traced.cycles));
        const double overhead =
            traced.hostMillis > 0.0 && bare.hostMillis > 0.0
                ? traced.hostMillis / bare.hostMillis - 1.0
                : 0.0;
        std::printf("%-12s %11llu %9.2f %9.2f %7.1f%%\n", name,
                    static_cast<unsigned long long>(traced.cycles),
                    bare.simCyclesPerHostSec() / 1e6,
                    traced.simCyclesPerHostSec() / 1e6,
                    100.0 * overhead);
        g_rows.push_back({"tracingOverhead", name, traced.cycles,
                          bare.simCyclesPerHostSec() / 1e6,
                          traced.simCyclesPerHostSec() / 1e6,
                          speedupOf(traced.hostMillis, bare.hostMillis),
                          100.0 * overhead});
    }

    writeJson(json_path, smoke);
    std::printf("\nJSON report: %s (tarantula.bench.v1)\n",
                json_path.c_str());
    return 0;
}
