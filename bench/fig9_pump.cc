/**
 * @file
 * Reproduces Figure 9: relative performance when the stride-1
 * double-bandwidth PUMP is disabled. Without it, stride-1 bandwidth
 * halves (16 instead of 32 words/cycle) and every stride-1 request
 * consumes eight MAF slots instead of one.
 */

#include <cstdio>

#include "bench/bench_util.hh"

using namespace tarantula;
using namespace tarantula::bench;

int
main()
{
    std::printf("Figure 9: relative performance with the PUMP "
                "disabled (1.0 = no slowdown)\n");
    std::printf("Paper shape: ratio < 1 everywhere; streaming and "
                "stride-1-rich codes suffer\n");
    std::printf("most (non-tiled codes near 0.5); even sparse MxV and "
                "ccradix lose.\n\n");
    std::printf("%-12s %12s %12s %10s\n", "benchmark", "pump cyc",
                "no-pump cyc", "relative");
    rule(50);

    const auto on = proc::tarantulaConfig();
    auto off = proc::tarantulaConfig();
    off.vbox.slicer.pumpEnabled = false;    // Figure 9 ablation knob
    off.name = "T-nopump";

    std::vector<workloads::Workload> suite = workloads::figureSuite();
    suite.push_back(workloads::swim(false));    // the untiled point
    for (const auto &w : suite) {
        const auto r_on = runOn(on, w);
        const auto r_off = runOn(off, w);
        std::printf("%-12s %12llu %12llu %10.2f\n", w.name.c_str(),
                    static_cast<unsigned long long>(r_on.cycles),
                    static_cast<unsigned long long>(r_off.cycles),
                    static_cast<double>(r_on.cycles) / r_off.cycles);
    }
    return 0;
}
