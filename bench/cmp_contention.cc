/**
 * @file
 * The CMP contention experiment the paper's introduction argues from:
 * "We believe performance of chip multiprocessors on vector codes
 * will suffer from the same difficulty: processors will compete for
 * the L2 and contention will lead to poor performance."
 *
 * Two parts. Part 1 is the original back-of-envelope version: bare
 * EV8 cores hand-wired to one L2 running a synthetic streaming
 * kernel, plus one Tarantula on the combined data. Part 2 is the
 * real thing (DESIGN.md §11): a full sys::System CMP -- cores x
 * workload sweep through the shared banked L2 with per-core bank
 * arbitration -- reporting per-core OPC, each core's share of the L2
 * pipe grants, cross-core bank conflicts and aggregate bandwidth.
 */

#include <algorithm>
#include <cstdio>
#include <deque>
#include <memory>
#include <string>
#include <vector>

#include "cache/l2_cache.hh"
#include "ev8/core.hh"
#include "exec/interp.hh"
#include "exec/memory.hh"
#include "mem/zbox.hh"
#include "proc/machine_config.hh"
#include "proc/processor.hh"
#include "program/assembler.hh"
#include "sim/sim_farm.hh"
#include "system/system.hh"
#include "workloads/workload.hh"

using namespace tarantula;
using namespace tarantula::program;

namespace
{

constexpr std::uint64_t ElemsPerCore = 10ULL * 1024 * 1024 / 8;
constexpr unsigned Sweeps = 2;

/** Scalar blocked sweep: y[i] += s * x[i] over a 10 MB x plus 10 MB y
 *  working set, repeated so reuse matters. */
Program
scalarKernel(Addr x_base, Addr y_base)
{
    Assembler a;
    Label sweep = a.newLabel();
    a.fconst(F(9), 1.25, R(9));
    a.movi(R(7), Sweeps);
    a.bind(sweep);
    Label loop = a.newLabel();
    a.movi(R(1), static_cast<std::int64_t>(x_base));
    a.movi(R(2), static_cast<std::int64_t>(y_base));
    a.movi(R(3), static_cast<std::int64_t>(ElemsPerCore));
    a.bind(loop);
    a.prefetch(2048, R(1));
    for (unsigned k = 0; k < 8; ++k) {
        a.ldt(F(1), k * 8, R(1));
        a.ldt(F(2), k * 8, R(2));
        a.mult(F(1), F(1), F(9));
        a.addt(F(2), F(2), F(1));
        a.stt(F(2), k * 8, R(2));
    }
    a.addq(R(1), R(1), 64);
    a.addq(R(2), R(2), 64);
    a.subq(R(3), R(3), 8);
    a.bgt(R(3), loop);
    a.subq(R(7), R(7), 1);
    a.bgt(R(7), sweep);
    a.halt();
    return a.finalize();
}

Program
vectorKernel(Addr x_base, Addr y_base, std::uint64_t elems)
{
    Assembler a;
    Label sweep = a.newLabel();
    a.fconst(F(9), 1.25, R(9));
    a.movi(R(7), Sweeps);
    a.setvl(128);
    a.setvs(8);
    a.bind(sweep);
    Label loop = a.newLabel();
    a.movi(R(1), static_cast<std::int64_t>(x_base));
    a.movi(R(2), static_cast<std::int64_t>(y_base));
    a.movi(R(3), static_cast<std::int64_t>(elems));
    a.bind(loop);
    a.vprefetch(R(1), 8192);
    a.vldt(V(0), R(1));
    a.vldt(V(1), R(2));
    a.vmult(V(2), V(0), F(9));
    a.vaddt(V(1), V(1), V(2));
    a.vstt(V(1), R(2));
    a.addq(R(1), R(1), 1024);
    a.addq(R(2), R(2), 1024);
    a.subq(R(3), R(3), 128);
    a.bgt(R(3), loop);
    a.subq(R(7), R(7), 1);
    a.bgt(R(7), sweep);
    a.halt();
    return a.finalize();
}

void
fillRegion(exec::FunctionalMemory &mem, Addr base,
           std::uint64_t elems)
{
    std::vector<double> buf(elems);
    for (std::uint64_t i = 0; i < elems; ++i)
        buf[i] = 0.001 * static_cast<double>(i % 4096);
    mem.write(base, buf.data(), elems * 8);
}

/** Run @p n_cores EV8 cores sharing one L2; return cycles to finish
 *  ALL of them. */
Cycle
runCmp(unsigned n_cores)
{
    const auto mcfg = proc::ev8PlusConfig();    // 16 MB shared L2
    stats::StatGroup root("cmp");
    mem::Zbox zbox(mcfg.zbox, root);
    cache::L2Cache l2(mcfg.l2, zbox, root);

    std::vector<std::unique_ptr<exec::FunctionalMemory>> mems;
    std::vector<std::unique_ptr<Program>> progs;
    std::vector<std::unique_ptr<exec::Interpreter>> interps;
    std::vector<std::unique_ptr<ev8::Core>> cores;

    for (unsigned c = 0; c < n_cores; ++c) {
        const Addr x = 0x10000000 + c * 0x10000000ULL;
        const Addr y = x + ElemsPerCore * 8 + 4096;
        mems.push_back(std::make_unique<exec::FunctionalMemory>());
        fillRegion(*mems.back(), x, ElemsPerCore);
        fillRegion(*mems.back(), y, ElemsPerCore);
        progs.push_back(
            std::make_unique<Program>(scalarKernel(x, y)));
        interps.push_back(std::make_unique<exec::Interpreter>(
            *progs.back(), *mems.back()));
        cores.push_back(std::make_unique<ev8::Core>(
            mcfg.core, *interps.back(), l2, nullptr, root, c));
    }
    // P-bit invalidates fan out to every L1.
    l2.setL1InvalidateHook([&cores](Addr line) {
        for (auto &c : cores)
            c->l1Invalidate(line);
    });

    Cycle now = 0;
    auto all_done = [&] {
        for (auto &c : cores) {
            if (!c->done())
                return false;
        }
        return true;
    };
    while (!all_done()) {
        ++now;
        zbox.cycle();
        l2.cycle();
        for (auto &c : cores)
            c->cycle();
        if (now > (4ULL << 30))
            fatal("cmp run wedged");
    }
    return now;
}

// ---- Part 2: the real CMP, a sys::System sweep ----------------------

/** One (workload, cores) point of the System sweep. */
struct CmpPoint
{
    std::string workload;
    unsigned cores = 1;
    Cycle cycles = 0;
    double aggOpc = 0.0;
    std::vector<double> coreOpc;    ///< per-core ops/cycle
    std::vector<double> share;      ///< per-core share of L2 grants
    std::uint64_t bankConflicts = 0;
    double rawMBs = 0.0;            ///< aggregate Zbox raw bandwidth
};

CmpPoint
runSystemPoint(const std::string &workload, unsigned n_cores)
{
    proc::MachineConfig cfg = proc::tarantulaConfig();
    cfg.cmp.numCores = n_cores;

    // Deques: the System holds pointers into both.
    std::deque<workloads::Workload> ws;
    std::deque<exec::FunctionalMemory> mems;
    std::vector<const Program *> progs;
    std::vector<exec::FunctionalMemory *> memPtrs;
    for (unsigned i = 0; i < n_cores; ++i) {
        ws.push_back(workloads::byName(workload));
        mems.emplace_back();
        ws.back().init(mems.back());
        progs.push_back(&ws.back().vectorProg);
        memPtrs.push_back(&mems.back());
    }

    sys::System cpu(cfg, progs, memPtrs);
    for (unsigned i = 0; i < n_cores; ++i) {
        const Addr bias = sys::System::addrBiasFor(cfg, i);
        for (const auto &r : ws[i].warmRanges) {
            for (std::uint64_t o = 0; o < r.bytes; o += CacheLineBytes)
                cpu.l2().warmLine((r.base + o) | bias);
        }
    }
    const proc::RunResult r = cpu.run(4ULL << 30);

    CmpPoint p;
    p.workload = workload;
    p.cores = n_cores;
    p.cycles = r.cycles;
    p.aggOpc = r.opc();
    p.rawMBs = r.rawBandwidthMBs();
    p.bankConflicts = cpu.l2().bankConflicts();
    std::uint64_t total_grants = 0;
    for (unsigned i = 0; i < n_cores; ++i)
        total_grants += cpu.l2().grantsFor(i);
    for (unsigned i = 0; i < n_cores; ++i) {
        p.coreOpc.push_back(
            r.cycles ? static_cast<double>(r.perCore[i].ops) /
                           static_cast<double>(r.cycles)
                     : 0.0);
        p.share.push_back(
            total_grants
                ? static_cast<double>(cpu.l2().grantsFor(i)) /
                      static_cast<double>(total_grants)
                : 0.0);
    }
    return p;
}

} // anonymous namespace

int
main()
{
    std::printf("CMP L2-contention experiment (the paper's "
                "introduction claim)\n\n");
    std::printf("Part 1: the original approximation -- bare EV8 "
                "cores hand-wired to one\n");
    std::printf("L2. Each core sweeps a 20 MB working set twice; one "
                "fits the shared\n");
    std::printf("16 MB L2 with reuse across sweeps, two do not.\n\n");

    // The three experiments are independent simulations, so they go
    // through SimFarm as custom jobs and run concurrently. Each task
    // builds its entire machine privately (shared-nothing).
    sim::SimFarm farm;
    auto cmpTask = [](unsigned n_cores) {
        return [n_cores] {
            sim::JobResult r;
            r.job.machine = "CMP-EV8";
            r.job.workload =
                "cmp_sweep_x" + std::to_string(n_cores);
            r.run.cycles = runCmp(n_cores);
            r.status = sim::JobStatus::Ok;
            return r;
        };
    };
    const std::size_t i_solo = farm.submit("cmp_solo", cmpTask(1));
    const std::size_t i_duo = farm.submit("cmp_duo", cmpTask(2));
    const std::size_t i_t = farm.submit("tarantula_both", [] {
        // One Tarantula chews through BOTH working sets, vectorized.
        sim::JobResult r;
        r.job.machine = "T";
        r.job.workload = "cmp_sweep_both";
        exec::FunctionalMemory mem;
        const Addr x = 0x10000000;
        const Addr y = x + 2 * ElemsPerCore * 8 + 4096;
        fillRegion(mem, x, 2 * ElemsPerCore);
        fillRegion(mem, y, 2 * ElemsPerCore);
        Program vp = vectorKernel(x, y, 2 * ElemsPerCore);
        proc::Processor t(proc::tarantulaConfig(), vp, mem);
        r.run = t.run(4ULL << 30);
        r.status = sim::JobStatus::Ok;
        return r;
    });

    const sim::BatchResult batch = farm.run();
    for (const auto &r : batch.jobs) {
        if (!r.ok())
            fatal("%s failed: %s", r.job.workload.c_str(),
                  r.message.c_str());
    }

    const Cycle solo = batch.jobs[i_solo].run.cycles;
    const Cycle duo = batch.jobs[i_duo].run.cycles;
    const Cycle t_both = batch.jobs[i_t].run.cycles;
    std::printf("  1 EV8 core alone:      %10llu cycles\n",
                static_cast<unsigned long long>(solo));
    std::printf("  2 EV8 cores sharing:   %10llu cycles "
                "(per-core slowdown %.2fx)\n",
                static_cast<unsigned long long>(duo),
                static_cast<double>(duo) / solo);
    std::printf("  1 Tarantula, both sets:%10llu cycles (%.2fx "
                "faster than the 2-core CMP\n"
                "                          on the same total work)\n",
                static_cast<unsigned long long>(t_both),
                static_cast<double>(duo) / t_both);

    std::printf("\nPart 2: the real CMP (DESIGN.md §11) -- full "
                "Tarantula cores sharing the\n");
    std::printf("banked L2 with per-core bank arbitration; every "
                "core runs its own copy\n");
    std::printf("of the workload on colored addresses.\n\n");

    const std::vector<std::string> sweeps = {"copy", "dgemm"};
    const std::vector<unsigned> counts = {1, 2, 4};
    std::vector<CmpPoint> points(sweeps.size() * counts.size());
    sim::SimFarm farm2;
    for (std::size_t wi = 0; wi < sweeps.size(); ++wi) {
        for (std::size_t ci = 0; ci < counts.size(); ++ci) {
            CmpPoint *slot = &points[wi * counts.size() + ci];
            const std::string name = sweeps[wi];
            const unsigned n = counts[ci];
            farm2.submit(name + "_x" + std::to_string(n),
                         [slot, name, n] {
                             *slot = runSystemPoint(name, n);
                             sim::JobResult r;
                             r.job.machine = "T";
                             r.job.workload = name;
                             r.status = sim::JobStatus::Ok;
                             return r;
                         });
        }
    }
    const sim::BatchResult batch2 = farm2.run();
    for (const auto &r : batch2.jobs) {
        if (!r.ok())
            fatal("system sweep %s failed: %s",
                  r.job.workload.c_str(), r.message.c_str());
    }

    std::printf("  %-8s %-5s %12s %9s %9s %14s %12s\n", "workload",
                "cores", "cycles", "agg opc", "core opc",
                "bank conflicts", "raw MB/s");
    for (const auto &p : points) {
        double min_opc = p.coreOpc.empty() ? 0.0 : p.coreOpc[0];
        double max_opc = min_opc;
        for (double o : p.coreOpc) {
            min_opc = std::min(min_opc, o);
            max_opc = std::max(max_opc, o);
        }
        std::printf("  %-8s %-5u %12llu %9.2f %4.2f-%-4.2f %14llu "
                    "%12.0f\n",
                    p.workload.c_str(), p.cores,
                    static_cast<unsigned long long>(p.cycles),
                    p.aggOpc, min_opc, max_opc,
                    static_cast<unsigned long long>(p.bankConflicts),
                    p.rawMBs);
    }
    // Fairness at a glance: the grant share each core won of the L2
    // pipes on the biggest sweep (a fair arbiter gives ~1/N each).
    const CmpPoint &big = points.back();
    std::printf("\n  L2 grant share on %s x%u:", big.workload.c_str(),
                big.cores);
    for (std::size_t i = 0; i < big.share.size(); ++i)
        std::printf(" core%zu %.1f%%", i, 100.0 * big.share[i]);
    std::printf("\n");
    return 0;
}
