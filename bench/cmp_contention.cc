/**
 * @file
 * The CMP contention experiment the paper's introduction argues from:
 * "We believe performance of chip multiprocessors on vector codes
 * will suffer from the same difficulty: processors will compete for
 * the L2 and contention will lead to poor performance."
 *
 * Two EV8 cores share one L2 and one memory controller (the CMP-EV8
 * of Table 1). Each runs the same blocked-streaming FP kernel over a
 * disjoint working set sized so one core's set fits the shared 16 MB
 * L2 but two do not. We report per-core slowdown versus running
 * alone, and contrast with one Tarantula running the vectorized
 * kernel over the combined data.
 */

#include <cstdio>
#include <memory>
#include <vector>

#include "cache/l2_cache.hh"
#include "ev8/core.hh"
#include "exec/interp.hh"
#include "exec/memory.hh"
#include "mem/zbox.hh"
#include "proc/machine_config.hh"
#include "proc/processor.hh"
#include "program/assembler.hh"
#include "sim/sim_farm.hh"

using namespace tarantula;
using namespace tarantula::program;

namespace
{

constexpr std::uint64_t ElemsPerCore = 10ULL * 1024 * 1024 / 8;
constexpr unsigned Sweeps = 2;

/** Scalar blocked sweep: y[i] += s * x[i] over a 10 MB x plus 10 MB y
 *  working set, repeated so reuse matters. */
Program
scalarKernel(Addr x_base, Addr y_base)
{
    Assembler a;
    Label sweep = a.newLabel();
    a.fconst(F(9), 1.25, R(9));
    a.movi(R(7), Sweeps);
    a.bind(sweep);
    Label loop = a.newLabel();
    a.movi(R(1), static_cast<std::int64_t>(x_base));
    a.movi(R(2), static_cast<std::int64_t>(y_base));
    a.movi(R(3), static_cast<std::int64_t>(ElemsPerCore));
    a.bind(loop);
    a.prefetch(2048, R(1));
    for (unsigned k = 0; k < 8; ++k) {
        a.ldt(F(1), k * 8, R(1));
        a.ldt(F(2), k * 8, R(2));
        a.mult(F(1), F(1), F(9));
        a.addt(F(2), F(2), F(1));
        a.stt(F(2), k * 8, R(2));
    }
    a.addq(R(1), R(1), 64);
    a.addq(R(2), R(2), 64);
    a.subq(R(3), R(3), 8);
    a.bgt(R(3), loop);
    a.subq(R(7), R(7), 1);
    a.bgt(R(7), sweep);
    a.halt();
    return a.finalize();
}

Program
vectorKernel(Addr x_base, Addr y_base, std::uint64_t elems)
{
    Assembler a;
    Label sweep = a.newLabel();
    a.fconst(F(9), 1.25, R(9));
    a.movi(R(7), Sweeps);
    a.setvl(128);
    a.setvs(8);
    a.bind(sweep);
    Label loop = a.newLabel();
    a.movi(R(1), static_cast<std::int64_t>(x_base));
    a.movi(R(2), static_cast<std::int64_t>(y_base));
    a.movi(R(3), static_cast<std::int64_t>(elems));
    a.bind(loop);
    a.vprefetch(R(1), 8192);
    a.vldt(V(0), R(1));
    a.vldt(V(1), R(2));
    a.vmult(V(2), V(0), F(9));
    a.vaddt(V(1), V(1), V(2));
    a.vstt(V(1), R(2));
    a.addq(R(1), R(1), 1024);
    a.addq(R(2), R(2), 1024);
    a.subq(R(3), R(3), 128);
    a.bgt(R(3), loop);
    a.subq(R(7), R(7), 1);
    a.bgt(R(7), sweep);
    a.halt();
    return a.finalize();
}

void
fillRegion(exec::FunctionalMemory &mem, Addr base,
           std::uint64_t elems)
{
    std::vector<double> buf(elems);
    for (std::uint64_t i = 0; i < elems; ++i)
        buf[i] = 0.001 * static_cast<double>(i % 4096);
    mem.write(base, buf.data(), elems * 8);
}

/** Run @p n_cores EV8 cores sharing one L2; return cycles to finish
 *  ALL of them. */
Cycle
runCmp(unsigned n_cores)
{
    const auto mcfg = proc::ev8PlusConfig();    // 16 MB shared L2
    stats::StatGroup root("cmp");
    mem::Zbox zbox(mcfg.zbox, root);
    cache::L2Cache l2(mcfg.l2, zbox, root);

    std::vector<std::unique_ptr<exec::FunctionalMemory>> mems;
    std::vector<std::unique_ptr<Program>> progs;
    std::vector<std::unique_ptr<exec::Interpreter>> interps;
    std::vector<std::unique_ptr<ev8::Core>> cores;

    for (unsigned c = 0; c < n_cores; ++c) {
        const Addr x = 0x10000000 + c * 0x10000000ULL;
        const Addr y = x + ElemsPerCore * 8 + 4096;
        mems.push_back(std::make_unique<exec::FunctionalMemory>());
        fillRegion(*mems.back(), x, ElemsPerCore);
        fillRegion(*mems.back(), y, ElemsPerCore);
        progs.push_back(
            std::make_unique<Program>(scalarKernel(x, y)));
        interps.push_back(std::make_unique<exec::Interpreter>(
            *progs.back(), *mems.back()));
        cores.push_back(std::make_unique<ev8::Core>(
            mcfg.core, *interps.back(), l2, nullptr, root, c));
    }
    // P-bit invalidates fan out to every L1.
    l2.setL1InvalidateHook([&cores](Addr line) {
        for (auto &c : cores)
            c->l1Invalidate(line);
    });

    Cycle now = 0;
    auto all_done = [&] {
        for (auto &c : cores) {
            if (!c->done())
                return false;
        }
        return true;
    };
    while (!all_done()) {
        ++now;
        zbox.cycle();
        l2.cycle();
        for (auto &c : cores)
            c->cycle();
        if (now > (4ULL << 30))
            fatal("cmp run wedged");
    }
    return now;
}

} // anonymous namespace

int
main()
{
    std::printf("CMP L2-contention experiment (the paper's "
                "introduction claim)\n");
    std::printf("Each core sweeps a 20 MB working set twice; one "
                "fits the shared 16 MB L2\n");
    std::printf("with reuse across sweeps, two do not.\n\n");

    // The three experiments are independent simulations, so they go
    // through SimFarm as custom jobs and run concurrently. Each task
    // builds its entire machine privately (shared-nothing).
    sim::SimFarm farm;
    auto cmpTask = [](unsigned n_cores) {
        return [n_cores] {
            sim::JobResult r;
            r.job.machine = "CMP-EV8";
            r.job.workload =
                "cmp_sweep_x" + std::to_string(n_cores);
            r.run.cycles = runCmp(n_cores);
            r.status = sim::JobStatus::Ok;
            return r;
        };
    };
    const std::size_t i_solo = farm.submit("cmp_solo", cmpTask(1));
    const std::size_t i_duo = farm.submit("cmp_duo", cmpTask(2));
    const std::size_t i_t = farm.submit("tarantula_both", [] {
        // One Tarantula chews through BOTH working sets, vectorized.
        sim::JobResult r;
        r.job.machine = "T";
        r.job.workload = "cmp_sweep_both";
        exec::FunctionalMemory mem;
        const Addr x = 0x10000000;
        const Addr y = x + 2 * ElemsPerCore * 8 + 4096;
        fillRegion(mem, x, 2 * ElemsPerCore);
        fillRegion(mem, y, 2 * ElemsPerCore);
        Program vp = vectorKernel(x, y, 2 * ElemsPerCore);
        proc::Processor t(proc::tarantulaConfig(), vp, mem);
        r.run = t.run(4ULL << 30);
        r.status = sim::JobStatus::Ok;
        return r;
    });

    const sim::BatchResult batch = farm.run();
    for (const auto &r : batch.jobs) {
        if (!r.ok())
            fatal("%s failed: %s", r.job.workload.c_str(),
                  r.message.c_str());
    }

    const Cycle solo = batch.jobs[i_solo].run.cycles;
    const Cycle duo = batch.jobs[i_duo].run.cycles;
    const Cycle t_both = batch.jobs[i_t].run.cycles;
    std::printf("  1 EV8 core alone:      %10llu cycles\n",
                static_cast<unsigned long long>(solo));
    std::printf("  2 EV8 cores sharing:   %10llu cycles "
                "(per-core slowdown %.2fx)\n",
                static_cast<unsigned long long>(duo),
                static_cast<double>(duo) / solo);
    std::printf("  1 Tarantula, both sets:%10llu cycles (%.2fx "
                "faster than the 2-core CMP\n"
                "                          on the same total work)\n",
                static_cast<unsigned long long>(t_both),
                static_cast<double>(duo) / t_both);
    return 0;
}
